module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra
module Rng = Disco_util.Rng
module Stats = Disco_util.Stats
module Telemetry = Disco_util.Telemetry

let now () = Telemetry.now_s ()

let path_stretch graph ~dist path =
  if dist <= 0.0 then 1.0 else Dijkstra.path_length graph path /. dist

let draw_pairs ?(dests_per_src = 8) rng ~n ~pairs =
  let sources = max 1 ((pairs + dests_per_src - 1) / dests_per_src) in
  List.init sources (fun _ ->
      let s = Rng.int rng n in
      let ds =
        List.init dests_per_src (fun _ -> Rng.int rng n)
        |> List.filter (fun d -> d <> s)
        |> List.sort_uniq compare
      in
      (s, ds))

let iter_groups ?tel graph groups f =
  let ws = Dijkstra.make_workspace graph in
  List.iter
    (fun (s, dests) ->
      (match tel with Some t -> Telemetry.sssp_run t | None -> ());
      let sp = Dijkstra.sssp ~ws graph s in
      List.iter
        (fun t ->
          let dist = sp.Dijkstra.dist.(t) in
          if dist > 0.0 && dist < infinity then f ~src:s ~dst:t ~dist)
        dests)
    groups

let iter_pairs ?tel ?dests_per_src ~pairs rng graph f =
  iter_groups ?tel graph
    (draw_pairs ?dests_per_src rng ~n:(Graph.n graph) ~pairs)
    f

type sampled = {
  router : string;
  flat_names : string;
  first : float array;
  later : float array;
  first_failures : int;
  later_failures : int;
  state : float array;
  tel : Telemetry.t;
  elapsed_s : float;
}

(* One ROUTER instance behind closures, so a heterogeneous list of built
   routers can share the measurement loop. *)
type built = {
  b_name : string;
  b_flat : string;
  b_first : tel:Telemetry.t -> src:int -> dst:int -> int list option;
  b_later : tel:Telemetry.t -> src:int -> dst:int -> int list option;
  b_state : int -> int;
  b_tel : Telemetry.t;
  mutable b_acc_first : float list;
  mutable b_acc_later : float list;
  mutable b_first_failures : int;
  mutable b_later_failures : int;
  mutable b_seconds : float;
}

let instantiate (module R : Protocol.ROUTER) tb =
  let t0 = now () in
  let r = R.build tb in
  {
    b_name = R.name;
    b_flat = R.flat_names;
    b_first = (fun ~tel ~src ~dst -> R.route_first r ~tel ~src ~dst);
    b_later = (fun ~tel ~src ~dst -> R.route_later r ~tel ~src ~dst);
    b_state = R.state_entries r;
    b_tel = Telemetry.create ();
    b_acc_first = [];
    b_acc_later = [];
    b_first_failures = 0;
    b_later_failures = 0;
    b_seconds = now () -. t0;
  }

let state_array packed tb =
  let b = instantiate packed tb in
  Array.init (Graph.n tb.Testbed.graph) (fun v -> float_of_int (b.b_state v))

let sample_pairs ?(pairs = 2000) ?(dests_per_src = 8) ?(purpose = 11) ?tel
    ~routers (tb : Testbed.t) =
  let graph = tb.Testbed.graph in
  let n = Graph.n graph in
  let built = List.map (fun r -> instantiate r tb) routers in
  let rng = Testbed.rng tb ~purpose in
  let groups = draw_pairs ~dests_per_src rng ~n ~pairs in
  iter_groups ?tel graph groups (fun ~src ~dst ~dist ->
      List.iter
        (fun b ->
          let t0 = now () in
          Telemetry.route_call b.b_tel;
          (match b.b_first ~tel:b.b_tel ~src ~dst with
          | Some path ->
              b.b_acc_first <- path_stretch graph ~dist path :: b.b_acc_first
          | None ->
              Telemetry.route_failure b.b_tel;
              b.b_first_failures <- b.b_first_failures + 1);
          Telemetry.route_call b.b_tel;
          (match b.b_later ~tel:b.b_tel ~src ~dst with
          | Some path ->
              b.b_acc_later <- path_stretch graph ~dist path :: b.b_acc_later
          | None ->
              Telemetry.route_failure b.b_tel;
              b.b_later_failures <- b.b_later_failures + 1);
          b.b_seconds <- b.b_seconds +. (now () -. t0))
        built);
  List.map
    (fun b ->
      (match tel with Some t -> Telemetry.add ~into:t b.b_tel | None -> ());
      let s =
        {
          router = b.b_name;
          flat_names = b.b_flat;
          first = Array.of_list (List.rev b.b_acc_first);
          later = Array.of_list (List.rev b.b_acc_later);
          first_failures = b.b_first_failures;
          later_failures = b.b_later_failures;
          state = Array.init n (fun v -> float_of_int (b.b_state v));
          tel = b.b_tel;
          elapsed_s = b.b_seconds;
        }
      in
      let summarize a =
        if Array.length a = 0 then (Float.nan, Float.nan)
        else
          let s = Stats.summarize a in
          (s.Stats.mean, s.Stats.max)
      in
      let fm, fx = summarize s.first in
      let lm, lx = summarize s.later in
      let sm, sx = summarize s.state in
      Results.record
        {
          Results.figure = Results.current_figure ();
          router = s.router;
          samples = Array.length s.first;
          stretch_first_mean = fm;
          stretch_first_max = fx;
          stretch_later_mean = lm;
          stretch_later_max = lx;
          state_mean = sm;
          state_max = sx;
          failures = s.first_failures + s.later_failures;
          route_calls = b.b_tel.Telemetry.route_calls;
          resolution_fallbacks = b.b_tel.Telemetry.resolution_fallbacks;
          messages = b.b_tel.Telemetry.messages_sent;
          elapsed_s = s.elapsed_s;
        };
      s)
    built

let find_sampled name samples =
  List.find_opt (fun s -> s.router = name) samples
