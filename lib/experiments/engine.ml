module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra
module Rng = Disco_util.Rng
module Stats = Disco_util.Stats
module Telemetry = Disco_util.Telemetry
module Pool = Disco_util.Pool

let now () = Telemetry.now_s ()

type config = {
  seed : int;
  scale : Scale.t;
  jobs : int;
  tel : Telemetry.t;
}

let path_stretch graph ~dist path =
  if dist <= 0.0 then 1.0 else Dijkstra.path_length graph path /. dist

let draw_pairs ?(dests_per_src = 8) rng ~n ~pairs =
  let sources = max 1 ((pairs + dests_per_src - 1) / dests_per_src) in
  List.init sources (fun _ ->
      let s = Rng.int rng n in
      let ds =
        List.init dests_per_src (fun _ -> Rng.int rng n)
        |> List.filter (fun d -> d <> s)
        |> List.sort_uniq compare
      in
      (s, ds))

type task = {
  t_index : int;
  t_seed : int;
  t_src : int;
  t_dests : int list;
}

let plan ~seed groups =
  Array.of_list
    (List.mapi
       (fun i (src, dests) ->
         { t_index = i; t_seed = Rng.derive seed i; t_src = src; t_dests = dests })
       groups)

(* One task = one source group = one SSSP oracle. Everything a task touches
   is private (its accumulator from [init], a per-task telemetry record, and
   on the parallel path a per-task Dijkstra workspace), so the result and the
   merged counters cannot depend on which domain ran what; [Pool.run] returns
   in index order and the [?tel] fold below walks that order. *)
let run ?pool ?tel graph tasks ~init ~visit =
  let exec ws task =
    let task_tel = Telemetry.create () in
    let acc = init task in
    let ws = match ws with Some ws -> ws | None -> Dijkstra.make_workspace graph in
    Telemetry.sssp_run task_tel;
    let sp = Dijkstra.sssp ~ws graph task.t_src in
    List.iter
      (fun dst ->
        let dist = sp.Dijkstra.dist.(dst) in
        if dist > 0.0 && dist < infinity then
          visit acc ~tel:task_tel ~src:task.t_src ~dst ~dist)
      task.t_dests;
    (acc, task_tel)
  in
  let out =
    match pool with
    | Some p when Pool.jobs p > 1 && Array.length tasks > 1 ->
        Pool.run p tasks (fun t -> exec None t)
    | _ ->
        (* Sequential: share one workspace across tasks (scratch only, never
           observable in results). *)
        let ws = Some (Dijkstra.make_workspace graph) in
        Array.map (fun t -> exec ws t) tasks
  in
  (match tel with
  | Some t -> Array.iter (fun (_, task_tel) -> Telemetry.add ~into:t task_tel) out
  | None -> ());
  Array.map fst out

let with_jobs jobs f =
  if jobs > 1 then Pool.with_pool ~jobs (fun p -> f (Some p)) else f None

let map_groups ?(jobs = 1) ?tel ~seed graph groups f =
  let tasks = plan ~seed groups in
  let accs =
    with_jobs jobs (fun pool ->
        run ?pool ?tel graph tasks
          ~init:(fun _ -> ref [])
          ~visit:(fun cell ~tel:_ ~src ~dst ~dist ->
            cell := f ~src ~dst ~dist :: !cell))
  in
  Array.of_list
    (List.concat_map (fun cell -> List.rev !cell) (Array.to_list accs))

let map_pairs ?jobs ?tel ?dests_per_src ~pairs ~seed rng graph f =
  let groups = draw_pairs ?dests_per_src rng ~n:(Graph.n graph) ~pairs in
  map_groups ?jobs ?tel ~seed graph groups f

let iter_groups ?tel graph groups f =
  ignore
    (run ?tel graph
       (plan ~seed:0 groups)
       ~init:(fun _ -> ())
       ~visit:(fun () ~tel:_ ~src ~dst ~dist -> f ~src ~dst ~dist)
      : unit array)

let iter_pairs ?tel ?dests_per_src ~pairs rng graph f =
  iter_groups ?tel graph
    (draw_pairs ?dests_per_src rng ~n:(Graph.n graph) ~pairs)
    f

type sampled = {
  router : string;
  flat_names : string;
  first : float array;
  later : float array;
  first_failures : int;
  later_failures : int;
  state : float array;
  tel : Telemetry.snapshot;
  elapsed_s : float;
}

(* One converged ROUTER instance behind closures, so a heterogeneous list of
   built routers can share the measurement loop. [b_fork] hands out per-task
   query handles (R.fork), which is what makes the measurement loop safe to
   run on the pool: any query-time mutable state is private to the handle. *)
type query = {
  q_first : tel:Telemetry.t -> src:int -> dst:int -> int list option;
  q_later : tel:Telemetry.t -> src:int -> dst:int -> int list option;
}

type built = {
  b_name : string;
  b_flat : string;
  b_state : int -> int;
  b_fork : unit -> query;
  b_build_s : float;
}

(* Measurements execute the scheme's data plane: every sampled pair is a
   packet walked hop by hop by the shared walker (Walk over R.forward),
   not a closed-form oracle route. *)
let instantiate (module R : Protocol.ROUTER) tb =
  let t0 = now () in
  let r = R.build tb in
  let graph = tb.Testbed.graph in
  {
    b_name = R.name;
    b_flat = R.flat_names;
    b_state = R.state_entries r;
    b_fork =
      (fun () ->
        let h = R.fork r in
        {
          q_first =
            (fun ~tel ~src ~dst -> Walk.first (module R) h ~tel ~graph ~src ~dst);
          q_later =
            (fun ~tel ~src ~dst -> Walk.later (module R) h ~tel ~graph ~src ~dst);
        });
    b_build_s = now () -. t0;
  }

let state_array packed tb =
  let b = instantiate packed tb in
  Array.init (Graph.n tb.Testbed.graph) (fun v -> float_of_int (b.b_state v))

(* Per-task, per-router accumulator. Stretch samples are consed in visit
   order and reversed at merge time, so the concatenation over tasks (in
   index order) reproduces the sequential sample order exactly. *)
type slot = {
  s_query : query;
  s_tel : Telemetry.t;
  mutable s_first : float list;
  mutable s_later : float list;
  mutable s_first_failures : int;
  mutable s_later_failures : int;
  mutable s_seconds : float;
}

let sample_pairs ?(pairs = 2000) ?(dests_per_src = 8) ?(purpose = 11)
    ?(jobs = 1) ?tel ~routers (tb : Testbed.t) =
  let graph = tb.Testbed.graph in
  let n = Graph.n graph in
  with_jobs jobs (fun pool ->
      let routers = Array.of_list routers in
      (* Build phase: router builds are independent (each draws from its own
         derived RNG stream), so they fan out over the pool too. *)
      let built =
        match pool with
        | Some p -> Pool.run p routers (fun r -> instantiate r tb)
        | None -> Array.map (fun r -> instantiate r tb) routers
      in
      let rng = Testbed.rng tb ~purpose in
      let groups = draw_pairs ~dests_per_src rng ~n ~pairs in
      let tasks = plan ~seed:(Rng.derive tb.Testbed.seed purpose) groups in
      let accs =
        run ?pool ?tel graph tasks
          ~init:(fun _ ->
            Array.map
              (fun b ->
                {
                  s_query = b.b_fork ();
                  s_tel = Telemetry.create ();
                  s_first = [];
                  s_later = [];
                  s_first_failures = 0;
                  s_later_failures = 0;
                  s_seconds = 0.0;
                })
              built)
          ~visit:(fun slots ~tel:_ ~src ~dst ~dist ->
            Array.iter
              (fun s ->
                let t0 = now () in
                Telemetry.route_call s.s_tel;
                (match s.s_query.q_first ~tel:s.s_tel ~src ~dst with
                | Some path ->
                    s.s_first <- path_stretch graph ~dist path :: s.s_first
                | None ->
                    Telemetry.route_failure s.s_tel;
                    s.s_first_failures <- s.s_first_failures + 1);
                Telemetry.route_call s.s_tel;
                (match s.s_query.q_later ~tel:s.s_tel ~src ~dst with
                | Some path ->
                    s.s_later <- path_stretch graph ~dist path :: s.s_later
                | None ->
                    Telemetry.route_failure s.s_tel;
                    s.s_later_failures <- s.s_later_failures + 1);
                s.s_seconds <- s.s_seconds +. (now () -. t0))
              slots)
      in
      let tasks_of ri = List.map (fun slots -> slots.(ri)) (Array.to_list accs) in
      List.mapi
        (fun ri b ->
          let slots = tasks_of ri in
          let r_tel = Telemetry.merge (List.map (fun s -> s.s_tel) slots) in
          (match tel with Some t -> Telemetry.add ~into:t r_tel | None -> ());
          let collect f = Array.of_list (List.concat_map (fun s -> List.rev (f s)) slots) in
          let sum f = List.fold_left (fun a s -> a + f s) 0 slots in
          let s =
            {
              router = b.b_name;
              flat_names = b.b_flat;
              first = collect (fun s -> s.s_first);
              later = collect (fun s -> s.s_later);
              first_failures = sum (fun s -> s.s_first_failures);
              later_failures = sum (fun s -> s.s_later_failures);
              state = Array.init n (fun v -> float_of_int (b.b_state v));
              tel = Telemetry.snapshot r_tel;
              elapsed_s =
                b.b_build_s
                +. List.fold_left (fun a s -> a +. s.s_seconds) 0.0 slots;
            }
          in
          let summarize a =
            if Array.length a = 0 then (Float.nan, Float.nan)
            else
              let st = Stats.summarize a in
              (st.Stats.mean, st.Stats.max)
          in
          let fm, fx = summarize s.first in
          let lm, lx = summarize s.later in
          let sm, sx = summarize s.state in
          Results.record
            {
              Results.figure = Results.current_figure ();
              router = s.router;
              samples = Array.length s.first;
              stretch_first_mean = fm;
              stretch_first_max = fx;
              stretch_later_mean = lm;
              stretch_later_max = lx;
              state_mean = sm;
              state_max = sx;
              failures = s.first_failures + s.later_failures;
              route_calls = r_tel.Telemetry.route_calls;
              resolution_fallbacks = r_tel.Telemetry.resolution_fallbacks;
              messages = r_tel.Telemetry.messages_sent;
              elapsed_s = s.elapsed_s;
            };
          s)
        (Array.to_list built))

let find_sampled name samples =
  List.find_opt (fun s -> s.router = name) samples
