(* fig2 and fig7: per-node routing state, in entries and in bytes. *)

module Graph = Disco_graph.Graph
module Gen = Disco_graph.Gen
module Stats = Disco_util.Stats
module Core = Disco_core

(* state: exact per-node bytes, every registered scheme. Unlike fig7's
   modelled name sizes, this reads [ROUTER.state_bytes] — the storage the
   packed slabs (CSR rows, distance slabs, Othello shares) actually
   hold — so the numbers are the ones the scaling sweep extrapolates. *)
let state (cfg : Engine.config) =
  let { Engine.seed; scale; _ } = cfg in
  let n = Scale.big_n scale in
  Report.section
    (Printf.sprintf
       "state: exact packed-state bytes per node on router-level topology; n=%d"
       n);
  let tb = Testbed.make ~seed Gen.Router_level ~n in
  let nn = Graph.n tb.Testbed.graph in
  List.iter
    (fun (module R : Protocol.ROUTER) ->
      let t = R.build tb in
      let bytes = Array.init nn (fun v -> R.state_bytes t v) in
      Report.summary_line ~label:R.name bytes;
      Report.cdf_series ~label:(Printf.sprintf "state.%s" R.name) bytes)
    (Routers.all ())

(* fig2: per-node state CDFs on geometric / AS / router topologies. *)
let fig2 (cfg : Engine.config) =
  let { Engine.seed; scale; _ } = cfg in
  Report.section
    (Printf.sprintf "fig2: state CDF over nodes (Disco, NDDisco, S4); n=%d"
       (Scale.big_n scale));
  List.iter
    (fun (kind, n) ->
      let tb = Testbed.make ~seed kind ~n in
      let st = Metrics.state tb in
      Printf.printf " topology=%s\n" (Gen.kind_name kind);
      Report.summary_line ~label:"disco" st.Metrics.disco;
      Report.summary_line ~label:"nddisco" st.Metrics.nddisco;
      Report.summary_line ~label:"s4" st.Metrics.s4;
      Report.cdf_series ~label:(Printf.sprintf "fig2.%s.disco" (Gen.kind_name kind)) st.Metrics.disco;
      Report.cdf_series ~label:(Printf.sprintf "fig2.%s.nddisco" (Gen.kind_name kind)) st.Metrics.nddisco;
      Report.cdf_series ~label:(Printf.sprintf "fig2.%s.s4" (Gen.kind_name kind)) st.Metrics.s4)
    (Scale.topologies scale)

(* fig7: state in entries and kilobytes (IPv4/IPv6 name sizes). *)
let fig7 (cfg : Engine.config) =
  let { Engine.seed; scale; _ } = cfg in
  let n = Scale.big_n scale in
  Report.section
    (Printf.sprintf "fig7: state entries and KB on router-level topology; n=%d" n);
  let tb = Testbed.make ~seed Gen.Router_level ~n in
  let nd = Testbed.nd tb in
  let st = Metrics.state tb in
  let addr_bytes name_bytes w =
    float_of_int
      (name_bytes + Core.Address.byte_size ~name_bytes (Core.Nddisco.address nd w))
  in
  let mean_addr =
    (* One mean per name size, not one per node: the value only depends on
       [nb]. *)
    let cache = Hashtbl.create 2 in
    fun nb ->
      match Hashtbl.find_opt cache nb with
      | Some v -> v
      | None ->
          let v =
            Stats.mean
              (Array.init (Graph.n tb.Testbed.graph) (fun w -> addr_bytes nb w))
          in
          Hashtbl.add cache nb v;
          v
  in
  (* Per-node bytes for the two route-table protocols: route entries cost
     name + 2B of next-hop state; resolution/group mappings cost
     name + address. *)
  let nddisco_bytes nb v =
    let resolution_entries =
      Core.Resolution.entries_at tb.Testbed.disco.Core.Disco.resolution v
    in
    let d = Core.Nddisco.state_entries ~resolution_entries nd v in
    float_of_int
      ((d.Core.Nddisco.vicinity_entries + d.Core.Nddisco.landmark_entries)
       * (nb + 2)
      + (2 * d.Core.Nddisco.label_mappings))
    +. (float_of_int d.Core.Nddisco.resolution_entries *. (mean_addr nb +. 0.0))
  in
  let cluster_sizes = Disco_baselines.S4.cluster_sizes tb.Testbed.s4 in
  let resolution_loads = Disco_baselines.S4.resolution_loads tb.Testbed.s4 in
  let s4_bytes nb v =
    let entries =
      Disco_baselines.S4.state_entries tb.Testbed.s4 ~cluster_sizes
        ~resolution_loads v
    in
    let resolution = resolution_loads.(v) in
    let labels = min (Graph.degree tb.Testbed.graph v) entries in
    float_of_int ((entries - resolution - labels) * (nb + 2))
    +. float_of_int (2 * labels)
    +. (float_of_int resolution *. mean_addr nb)
  in
  let disco_bytes nb v = Core.Disco.state_bytes tb.Testbed.disco ~name_bytes:nb v in
  let nn = Graph.n tb.Testbed.graph in
  let collect f = Array.init nn f in
  let row label entries bytes4 bytes16 =
    let e = Stats.summarize entries in
    let b4 = Stats.summarize bytes4 in
    let b16 = Stats.summarize bytes16 in
    [
      label;
      Printf.sprintf "%.1f" e.Stats.mean;
      Printf.sprintf "%.0f" e.Stats.max;
      Printf.sprintf "%.2f" (b4.Stats.mean /. 1024.0);
      Printf.sprintf "%.2f" (b4.Stats.max /. 1024.0);
      Printf.sprintf "%.2f" (b16.Stats.mean /. 1024.0);
      Printf.sprintf "%.2f" (b16.Stats.max /. 1024.0);
    ]
  in
  Report.table
    ~header:
      [ "scheme"; "entries-mean"; "entries-max"; "KB(IPv4)-mean"; "KB(IPv4)-max";
        "KB(IPv6)-mean"; "KB(IPv6)-max" ]
    [
      row "s4" st.Metrics.s4 (collect (s4_bytes 4)) (collect (s4_bytes 16));
      row "nddisco" st.Metrics.nddisco
        (collect (nddisco_bytes 4))
        (collect (nddisco_bytes 16));
      row "disco" st.Metrics.disco (collect (disco_bytes 4)) (collect (disco_bytes 16));
    ]
