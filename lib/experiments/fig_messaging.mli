(** Runner bodies behind the [messaging] figure ids. Only the
    entry points {!Figures} dispatches are exposed; everything else is a
    private helper. Runners print via {!Report} and accumulate onto the
    config's telemetry; see {!Engine.config} for the contract. *)

val fig8 : Engine.config -> unit
(** Messages per node until convergence as n grows (fig 8). *)

val overlay : Engine.config -> unit
(** Address dissemination over the group overlay, 1 vs 3 fingers,
    against the naive landmark relay §4.4 rejects. *)
