module Telemetry = Disco_util.Telemetry
module Dataplane = Disco_core.Dataplane
module Graph = Disco_graph.Graph

let fell_back (tr : Dataplane.trace) =
  List.exists
    (fun (s : Dataplane.step) ->
      match s.Dataplane.action with
      | Dataplane.Resolution_via _ -> true
      | _ -> false)
    tr.Dataplane.steps

let record tel (tr : Dataplane.trace) =
  Telemetry.packet_walked tel ~delivered:tr.Dataplane.delivered
    ~hops:tr.Dataplane.hops ~rewrites:tr.Dataplane.rewrites
    ~header_bytes:tr.Dataplane.header_bytes_total;
  if fell_back tr then Telemetry.resolution_fallback tel;
  tr

let walk (type a) (module R : Protocol.ROUTER with type t = a) (rt : a) ~tel
    ~graph ~src header =
  record tel
    (Dataplane.walk
       ~ttl:(R.ttl_factor * Graph.n graph)
       graph ~forward:(R.forward rt) ~src header)

let first_trace (type a) (module R : Protocol.ROUTER with type t = a) (rt : a)
    ~tel ~graph ~src ~dst =
  walk (module R) rt ~tel ~graph ~src (R.first_header rt ~tel ~src ~dst)

let later_trace (type a) (module R : Protocol.ROUTER with type t = a) (rt : a)
    ~tel ~graph ~src ~dst =
  walk (module R) rt ~tel ~graph ~src (R.later_header rt ~tel ~src ~dst)

let path_of (tr : Dataplane.trace) =
  if tr.Dataplane.delivered then Some tr.Dataplane.path else None

let first m rt ~tel ~graph ~src ~dst =
  path_of (first_trace m rt ~tel ~graph ~src ~dst)

let later m rt ~tel ~graph ~src ~dst =
  path_of (later_trace m rt ~tel ~graph ~src ~dst)
