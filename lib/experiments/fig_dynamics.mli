(** Runner bodies behind the [dynamics] figure ids. Only the
    entry points {!Figures} dispatches are exposed; everything else is a
    private helper. Runners print via {!Report} and accumulate onto the
    config's telemetry; see {!Engine.config} for the contract. *)

val dynamics : Engine.config -> unit
(** The event-driven protocol under scripted join/leave churn. *)
