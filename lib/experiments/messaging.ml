module Graph = Disco_graph.Graph
module Gen = Disco_graph.Gen
module Rng = Disco_util.Rng
module Core = Disco_core
module Pathvector = Disco_pathvector.Pathvector

type point = {
  n : int;
  pathvector : float;
  pv_measured : bool;
  s4 : float;
  nddisco : float;
  disco_1f : float;
  disco_3f : float;
}

let per_node (r : Pathvector.result) n =
  float_of_int r.Pathvector.total_messages /. float_of_int n

let hops path = max 0 (List.length path - 1)

(* Disco's flat-name additions on top of NDDisco's path-vector cost. *)
let disco_extra_messages ~rng nd ~fingers =
  let n = Core.Nddisco.n nd in
  let resolution = Core.Resolution.build nd in
  let owners = Core.Resolution.owners_by_node resolution in
  let groups = Core.Groups.of_nddisco nd in
  let overlay = Core.Overlay.build ~rng ~fingers nd groups in
  let trees = nd.Core.Nddisco.trees in
  let total = ref 0 in
  for v = 0 to n - 1 do
    (* Address insert travels v ~> owner landmark. *)
    let insert_hops = hops (Core.Landmark_trees.path_to trees v ~lm:owners.(v)) in
    total := !total + insert_hops;
    (* Each finger bootstrap: query to the owner of the drawn key (about
       the finger's own hash) and a response back. *)
    Array.iter
      (fun w ->
        let owner = owners.(w) in
        let q = hops (Core.Landmark_trees.path_to trees v ~lm:owner) in
        total := !total + (2 * q))
      (Core.Overlay.out_fingers overlay v)
  done;
  let d = Core.Overlay.disseminate overlay in
  !total + d.Core.Overlay.messages

let sweep ?telemetry ?(seed = 42) ?(pv_cap = 512) ~sizes () =
  let points =
    List.map
      (fun n ->
        let rng = Rng.create ((seed * 7919) + n) in
        let graph = Gen.gnm ~rng ~n ~m:(4 * n) in
        let params = Core.Params.default in
        let nd = Core.Nddisco.build ~params ~rng graph in
        let landmarks = nd.Core.Nddisco.landmarks in
        let flags = landmarks.Core.Landmarks.is_landmark in
        let k = Core.Params.vicinity_size params ~n in
        let pv_measured = n <= pv_cap in
        let pv =
          if pv_measured then
            per_node (Pathvector.run ?telemetry ~graph ~mode:Pathvector.Full ()) n
          else 0.0 (* filled by extrapolation below *)
        in
        let nddisco_msgs =
          per_node
            (Pathvector.run ?telemetry ~graph
               ~mode:(Pathvector.Landmarks_and_k_closest { landmarks = flags; k })
               ())
            n
        in
        let s4_msgs =
          per_node
            (Pathvector.run ?telemetry ~graph
               ~mode:
                 (Pathvector.Landmarks_and_radius
                    { landmarks = flags; radius = landmarks.Core.Landmarks.dist })
               ())
            n
        in
        let extra f =
          float_of_int (disco_extra_messages ~rng nd ~fingers:f) /. float_of_int n
        in
        {
          n;
          pathvector = pv;
          pv_measured;
          s4 = s4_msgs;
          nddisco = nddisco_msgs;
          disco_1f = nddisco_msgs +. extra 1;
          disco_3f = nddisco_msgs +. extra 3;
        })
      sizes
  in
  (* Linear extrapolation of path vector beyond pv_cap, as in Fig 8:
     messages/node grow linearly in n, so scale the largest measured
     point. *)
  let measured = List.filter (fun p -> p.pv_measured) points in
  match List.rev measured with
  | [] -> points
  | last :: _ ->
      let slope = last.pathvector /. float_of_int last.n in
      List.map
        (fun p ->
          if p.pv_measured then p
          else { p with pathvector = slope *. float_of_int p.n })
        points

type overlay_stats = {
  fingers : int;
  mean_announce_hops : float;
  max_announce_hops : int;
  dissemination_messages : int;
  coverage : float;
}

let overlay_comparison ?(seed = 42) ~n () =
  let rng = Rng.create ((seed * 104729) + n) in
  let graph = Gen.gnm ~rng ~n ~m:(4 * n) in
  let nd = Core.Nddisco.build ~rng graph in
  let groups = Core.Groups.of_nddisco nd in
  List.map
    (fun fingers ->
      let overlay = Core.Overlay.build ~rng ~fingers nd groups in
      let d = Core.Overlay.disseminate overlay in
      {
        fingers;
        mean_announce_hops = d.Core.Overlay.mean_hops;
        max_announce_hops = d.Core.Overlay.max_hops;
        dissemination_messages = d.Core.Overlay.messages;
        coverage =
          (if d.Core.Overlay.expected = 0 then 1.0
           else float_of_int d.Core.Overlay.reached /. float_of_int d.Core.Overlay.expected);
      })
    [ 1; 3 ]
