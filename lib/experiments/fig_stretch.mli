(** Runner bodies behind the [stretch] figure ids. Only the
    entry points {!Figures} dispatches are exposed; everything else is a
    private helper. Runners print via {!Report} and accumulate onto the
    config's telemetry; see {!Engine.config} for the contract. *)

val vicinity : Engine.config -> unit
(** Ablation of the vicinity constant: state/stretch/fallback as
    c · sqrt(n log n) shrinks below the w.h.p. regime. *)

val fig3 : Engine.config -> unit
(** Stretch CDFs for first and later packets (fig 3). *)

val fig6 : Engine.config -> unit
(** Mean stretch per shortcutting heuristic (fig 6). *)
