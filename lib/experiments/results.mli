(** Machine-readable per-figure/per-router summaries.

    The sampled-pairs engine records one {!entry} per router it measures,
    tagged with the figure set by {!set_figure}; figure runners append a
    figure-level entry (router ["_figure"]) with elapsed wall-clock and
    message totals. [bench/main.exe --json out.json] serializes the store
    so the perf trajectory can be tracked across PRs. *)

type entry = {
  figure : string;
  router : string;  (** a registry name, or ["_figure"] for totals *)
  samples : int;
  stretch_first_mean : float;  (** NaN encodes "not measured" -> null *)
  stretch_first_max : float;
  stretch_later_mean : float;
  stretch_later_max : float;
  state_mean : float;
  state_max : float;
  failures : int;
  route_calls : int;
  resolution_fallbacks : int;
  messages : int;
  elapsed_s : float;
}

val reset : unit -> unit
val set_figure : string -> unit
val current_figure : unit -> string
val record : entry -> unit
val all : unit -> entry list

val to_json : ?timings:bool -> unit -> string
(** The whole store as a JSON array of flat objects. [timings] (default
    true) controls the [elapsed_s] field; pass [false] to null it out so
    two runs can be compared byte-for-byte (wall-clock is the one field
    that legitimately differs across [jobs] values). *)

val write_json : string -> unit
