(** Runner bodies behind the [compare] figure ids. Only the
    entry points {!Figures} dispatches are exposed; everything else is a
    private helper. Runners print via {!Report} and accumulate onto the
    config's telemetry; see {!Engine.config} for the contract. *)

val fig1 : Engine.config -> unit
(** The paper's protocol-comparison table (fig 1), measured: every
    registered scheme's state and stretch side by side on one geometric
    topology. *)
