(** Execute a registered scheme's data plane with the shared walker.

    This is the single packet walker behind the engine, the figures and
    [disco-sim trace]: build the scheme's header at the source, run its
    {!Protocol.ROUTER.forward} hop by hop under the scheme's TTL budget,
    record the walk on the telemetry (walk/delivery/hop/rewrite/byte
    counters, plus a resolution fallback when the trace shows one), and
    return the result. The closed-form route computations remain available
    as {!Protocol.ROUTER.oracle_first}/[oracle_later] — disco-check diffs
    the two; everything user-facing routes through here. *)

val first_trace :
  (module Protocol.ROUTER with type t = 'a) ->
  'a ->
  tel:Disco_util.Telemetry.t ->
  graph:Disco_graph.Graph.t ->
  src:int ->
  dst:int ->
  Disco_core.Dataplane.trace
(** Walk a first packet (flat-name delivery, lookup detours included). *)

val later_trace :
  (module Protocol.ROUTER with type t = 'a) ->
  'a ->
  tel:Disco_util.Telemetry.t ->
  graph:Disco_graph.Graph.t ->
  src:int ->
  dst:int ->
  Disco_core.Dataplane.trace
(** Walk a packet after the first exchange taught the source its cache. *)

val first :
  (module Protocol.ROUTER with type t = 'a) ->
  'a ->
  tel:Disco_util.Telemetry.t ->
  graph:Disco_graph.Graph.t ->
  src:int ->
  dst:int ->
  int list option
(** {!first_trace}'s node path when delivered, [None] otherwise — the
    walker-backed replacement for the old [route_first] surface. *)

val later :
  (module Protocol.ROUTER with type t = 'a) ->
  'a ->
  tel:Disco_util.Telemetry.t ->
  graph:Disco_graph.Graph.t ->
  src:int ->
  dst:int ->
  int list option

val fell_back : Disco_core.Dataplane.trace -> bool
(** Did the walk include a resolution-database detour
    ({!Dataplane.Resolution_via})? *)
