(** Control-messaging measurement (Fig 8 and the §5 overlay numbers).

    Runs the dynamic path-vector protocol (with each scheme's acceptance
    policy) on the event simulator over G(n,m) graphs of increasing size
    and counts messages per node until convergence. Disco's additional
    flat-name machinery is accounted on top of NDDisco's path-vector cost:
    resolution-database inserts, finger bootstrap queries, and the overlay
    dissemination of every node's address (each overlay message counts
    once, like every other protocol message). *)

type point = {
  n : int;
  pathvector : float;  (** messages/node; extrapolated when [pv_measured] is false *)
  pv_measured : bool;
  s4 : float;
  nddisco : float;
  disco_1f : float;
  disco_3f : float;
}

val sweep :
  ?telemetry:Disco_util.Telemetry.t ->
  ?seed:int ->
  ?pv_cap:int ->
  sizes:int list ->
  unit ->
  point list
(** [pv_cap] bounds the sizes on which full path vector actually runs
    (default 512, extrapolating linearly above, as the paper does beyond
    512 nodes). [telemetry] counts every simulator message sent across the
    sweep. *)

type overlay_stats = {
  fingers : int;
  mean_announce_hops : float;
  max_announce_hops : int;
  dissemination_messages : int;
  coverage : float;  (** reached / expected (origin, member) pairs *)
}

val overlay_comparison : ?seed:int -> n:int -> unit -> overlay_stats list
(** The §5 in-text experiment: announcement travel distance and message
    cost for 1 vs 3 fingers on a G(n,m) graph. *)
