(* The figure registry: each runner body lives in its own fig_* module;
   this file only knows their names, their order, and the bookkeeping
   every run shares (telemetry, wall-clock, the Results store). *)

module Telemetry = Disco_util.Telemetry

type scale = Scale.t = Small | Paper

let scale_of_string = Scale.of_string

let runners : (string * (Engine.config -> unit)) list =
  [
    ("fig1", Fig_compare.fig1);
    ("header", Fig_address.header);
    ("vicinity", Fig_stretch.vicinity);
    ("fig2", Fig_state.fig2);
    ("state", Fig_state.state);
    ("fig3", Fig_stretch.fig3);
    ("fig4", Fig_vrr.fig4);
    ("fig5", Fig_vrr.fig5);
    ("fig6", Fig_stretch.fig6);
    ("fig7", Fig_state.fig7);
    ("fig8", Fig_messaging.fig8);
    ("fig9", Fig_scaling.fig9);
    ("fig10", Fig_congestion.fig10);
    ("addr", Fig_address.addr);
    ("overlay", Fig_messaging.overlay);
    ("nerror", Fig_estimation.nerror);
    ("synopsis", Fig_estimation.synopsis);
    ("churn", Fig_estimation.churn);
    ("policy", Fig_control.policy);
    ("control", Fig_control.control);
    ("dynamics", Fig_dynamics.dynamics);
    ("tradeoff", Fig_scaling.tradeoff);
    ("fate", Fig_congestion.fate);
  ]

let all_ids = List.map fst runners

let run_one ~seed ~jobs scale id f =
  Results.set_figure id;
  let tel = Telemetry.create () in
  let cfg = { Engine.seed; scale; jobs; tel } in
  let t0 = Engine.now () in
  f cfg;
  let elapsed = Engine.now () -. t0 in
  Results.record
    {
      Results.figure = id;
      router = "_figure";
      samples = 0;
      stretch_first_mean = Float.nan;
      stretch_first_max = Float.nan;
      stretch_later_mean = Float.nan;
      stretch_later_max = Float.nan;
      state_mean = Float.nan;
      state_max = Float.nan;
      failures = tel.Telemetry.route_failures;
      route_calls = tel.Telemetry.route_calls;
      resolution_fallbacks = tel.Telemetry.resolution_fallbacks;
      messages = tel.Telemetry.messages_sent;
      elapsed_s = elapsed;
    };
  Report.kv "cost"
    (Printf.sprintf "%.1fs; %s" elapsed (Telemetry.to_string tel))

let run ?(seed = 42) ?(jobs = 1) scale id =
  match List.assoc_opt id runners with
  | Some f -> run_one ~seed ~jobs scale id f
  | None -> invalid_arg (Printf.sprintf "Figures.run: unknown figure %S" id)

let run_all ?(seed = 42) ?(jobs = 1) scale =
  List.iter (fun (id, f) -> run_one ~seed ~jobs scale id f) runners
