(** Runner bodies behind the [estimation] figure ids. Only the
    entry points {!Figures} dispatches are exposed; everything else is a
    private helper. Runners print via {!Report} and accumulate onto the
    config's telemetry; see {!Engine.config} for the contract. *)

val nerror : Engine.config -> unit
(** Random error in each node's estimate of n (§5). *)

val synopsis : Engine.config -> unit
(** Estimate-n accuracy via synopsis diffusion (§4.1). *)

val churn : Engine.config -> unit
(** Landmark flips under the factor-2 hysteresis rule vs naive
    re-draws (§4.2). *)
