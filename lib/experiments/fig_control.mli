(** Runner bodies behind the [control] figure ids. Only the
    entry points {!Figures} dispatches are exposed; everything else is a
    private helper. Runners print via {!Report} and accumulate onto the
    config's telemetry; see {!Engine.config} for the contract. *)

val policy : Engine.config -> unit
(** Random vs operator-chosen (highest-degree) landmarks (§6). *)

val control : Engine.config -> unit
(** Control-plane state, plain vs forgetful routing (Theorem 2). *)
