(** Runner bodies behind the [scaling] figure ids. Only the
    entry points {!Figures} dispatches are exposed; everything else is a
    private helper. Runners print via {!Report} and accumulate onto the
    config's telemetry; see {!Engine.config} for the contract. *)

val fig9 : Engine.config -> unit
(** Mean stretch and state as n grows (fig 9). *)

val tradeoff : Engine.config -> unit
(** The TZ-hierarchy state/stretch trade-off sweep (§6). *)
