(** Runner bodies behind the [vrr] figure ids. Only the
    entry points {!Figures} dispatches are exposed; everything else is a
    private helper. Runners print via {!Report} and accumulate onto the
    config's telemetry; see {!Engine.config} for the contract. *)

val fig4 : Engine.config -> unit
(** State/stretch/congestion including VRR on G(n,m) (fig 4). *)

val fig5 : Engine.config -> unit
(** Same as fig 4 on the geometric topology (fig 5). *)
