(* dynamics: the event-driven protocol under a scripted life cycle —
   cold start, a batch of late joins, a batch of fail-stop leaves —
   reporting reachability and cumulative protocol messages over time.
   (The paper's simulations measure initial convergence only and leave
   "continuous churn to future work"; this experiment is that future
   work.) *)

module Gen = Disco_graph.Gen
module Rng = Disco_util.Rng

let dynamics (cfg : Engine.config) =
  let { Engine.seed; _ } = cfg in
  Report.section "dynamics: event-driven Disco under join/leave churn (G(n,m), n=128)";
  let n = 128 in
  let rng = Rng.create (seed * 23) in
  let graph = Gen.gnm ~rng ~n ~m:(4 * n) in
  let net = Disco_dynamic.Network.create ~rng ~graph ~n_estimate:n () in
  let joiners = [ 9; 23; 77; 101 ] in
  let leavers = [ 14; 60 ] in
  let pair_rng = Rng.create (seed + 5) in
  let pairs ~alive =
    List.init 80 (fun _ -> (Rng.int pair_rng n, Rng.int pair_rng n))
    |> List.filter (fun (s, d) -> s <> d && alive s && alive d)
  in
  for v = 0 to n - 1 do
    if not (List.mem v joiners) then Disco_dynamic.Network.activate net v
  done;
  let report label ~alive =
    Report.kv label
      (Printf.sprintf "t=%5.0f msgs=%8d landmarks=%3d reachability=%.3f"
         (Disco_dynamic.Network.now net)
         (Disco_dynamic.Network.messages_sent net)
         (Disco_dynamic.Network.landmark_count net)
         (Disco_dynamic.Network.reachable_fraction net ~pairs:(pairs ~alive)))
  in
  let alive0 v = not (List.mem v joiners) in
  Disco_dynamic.Network.run_until net 150.0;
  report "after cold start" ~alive:alive0;
  Disco_dynamic.Network.run_until net 400.0;
  report "steady state" ~alive:alive0;
  List.iter (Disco_dynamic.Network.activate net) joiners;
  Disco_dynamic.Network.run_until net 800.0;
  report "after 4 joins" ~alive:(fun _ -> true);
  List.iter (Disco_dynamic.Network.deactivate net) leavers;
  let alive2 v = not (List.mem v leavers) in
  Disco_dynamic.Network.run_until net 900.0;
  report "right after 2 fail-stops" ~alive:alive2;
  Disco_dynamic.Network.run_until net 1500.0;
  report "after soft-state repair" ~alive:alive2
