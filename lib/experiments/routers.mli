(** The built-in {!Protocol.ROUTER} adapters, registered in fig1 order:
    pathvector, seattle, bvr, vrr, s4, nddisco, disco, tz.

    Each adapter is a thin shim over the underlying protocol module; all
    of them build from one {!Testbed.t}, so Disco/NDDisco/S4 share the
    testbed's converged instances (same landmark draw) and BVR/TZ draw
    their extra randomness from dedicated testbed RNG streams. *)

val all : unit -> Protocol.packed list
(** All registered routers, registration order. Use this (not
    {!Protocol.all}) so the built-ins are guaranteed to be loaded. *)

val names : unit -> string list
val find : string -> Protocol.packed option
val find_exn : string -> Protocol.packed
