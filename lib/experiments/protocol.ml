module Telemetry = Disco_util.Telemetry
module Dataplane = Disco_core.Dataplane

module type ROUTER = sig
  type t

  val name : string
  val flat_names : string
  val build : Testbed.t -> t
  val ttl_factor : int

  val first_header :
    t -> tel:Telemetry.t -> src:int -> dst:int -> Dataplane.header

  val later_header :
    t -> tel:Telemetry.t -> src:int -> dst:int -> Dataplane.header

  val forward : t -> Dataplane.header -> at:int -> Dataplane.decision

  val oracle_first :
    t -> tel:Telemetry.t -> src:int -> dst:int -> int list option

  val oracle_later :
    t -> tel:Telemetry.t -> src:int -> dst:int -> int list option

  val state_entries : t -> int -> int
  val state_bytes : t -> int -> float
  val fork : t -> t
  val compile : t -> Dataplane.fast_plan
end

type packed = (module ROUTER)

let name_of (module R : ROUTER) = R.name

let registry : packed list ref = ref []

let register ((module R : ROUTER) as m) =
  if List.exists (fun p -> name_of p = R.name) !registry then
    invalid_arg (Printf.sprintf "Protocol.register: duplicate router %S" R.name);
  registry := !registry @ [ m ]

(* disco-lint: allow L8 the registry is written once at module-init registration time and read-only while the pool runs *)
let all () = !registry

(* disco-lint: allow L8 the registry is written once at module-init registration time and read-only while the pool runs *)
let names () = List.map name_of !registry

(* disco-lint: allow L8 the registry is written once at module-init registration time and read-only while the pool runs *)
let find name = List.find_opt (fun p -> name_of p = name) !registry

let find_exn name =
  match find name with
  | Some p -> p
  | None ->
      invalid_arg
        (Printf.sprintf "Protocol.find_exn: unknown router %S (expected one of: %s)"
           name
           (String.concat ", " (names ())))
