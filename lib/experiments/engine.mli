(** The one sampled-pairs measurement loop the whole evaluation shares —
    now task-based and optionally parallel.

    Sources are drawn uniformly and destinations grouped per source, so a
    single SSSP run provides the shortest-path oracle for a batch of
    pairs. {!plan} turns the drawn groups into an explicit task array (one
    task per source group, each with an {!Disco_util.Rng.derive}d seed);
    {!run} executes the tasks — sequentially, or on a {!Disco_util.Pool}
    — with a private accumulator and a private telemetry record per task,
    merged in task-index order at the barrier. Results are therefore
    bit-identical for every [jobs] value (DESIGN.md §5d). Every figure
    that measures stretch or state either calls {!sample_pairs}
    (table-driven, over registry routers) or maps a per-pair function via
    {!map_pairs}/{!map_groups} — there is no other copy of this loop in
    the repo. *)

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]); the one timing source the
    harness uses. *)

type config = {
  seed : int;  (** deterministic RNG seed for the whole run *)
  scale : Scale.t;
  jobs : int;  (** worker-domain budget; 1 = sequential *)
  tel : Disco_util.Telemetry.t;  (** the figure's accumulator *)
}
(** What a figure runner receives (replaces the old [Protocol.ctx]): the
    seed, the scale, the parallelism budget, and the figure's telemetry
    record (threaded into the engine and the simulator). *)

val path_stretch : Disco_graph.Graph.t -> dist:float -> int list -> float
(** Stretch of one route given the true shortest distance. *)

val draw_pairs :
  ?dests_per_src:int ->
  Disco_util.Rng.t ->
  n:int ->
  pairs:int ->
  (int * int list) list
(** Sample ~[pairs] (source, destinations) groups ([dests_per_src]
    destinations per source, default 8; self-pairs dropped, duplicates
    merged). Drawing is separate from planning so sweeps can reuse one
    draw across variants (e.g. the heuristic table). *)

type task = {
  t_index : int;  (** position in the plan; merge order *)
  t_seed : int;  (** [Rng.derive plan_seed t_index] — tasks that need
                     randomness derive their own stream from this, never
                     from a shared RNG *)
  t_src : int;
  t_dests : int list;
}

val plan : seed:int -> (int * int list) list -> task array
(** One task per source group, in draw order. [seed] scopes the per-task
    seeds; callers derive it from their figure seed and RNG purpose. *)

val run :
  ?pool:Disco_util.Pool.t ->
  ?tel:Disco_util.Telemetry.t ->
  Disco_graph.Graph.t ->
  task array ->
  init:(task -> 'acc) ->
  visit:
    ('acc ->
    tel:Disco_util.Telemetry.t ->
    src:int ->
    dst:int ->
    dist:float ->
    unit) ->
  'acc array
(** Execute the plan: per task, one SSSP oracle for [t_src] (counted on
    the task's private telemetry, which [visit] also receives), then
    [visit] for every reachable destination with its true distance.
    Accumulators come back in task-index order, and per-task telemetry is
    folded into [?tel] in that same order — so the outcome is identical
    whether the tasks ran inline (no [pool], or a 1-job pool) or on
    [pool]. [init]/[visit] must touch nothing shared; the engine's own
    callers get that for free via forked router handles
    ({!Protocol.ROUTER.fork}). *)

val map_groups :
  ?jobs:int ->
  ?tel:Disco_util.Telemetry.t ->
  seed:int ->
  Disco_graph.Graph.t ->
  (int * int list) list ->
  (src:int -> dst:int -> dist:float -> 'b) ->
  'b array
(** [plan] + [run] for the common shape "one value per sampled pair":
    returns [f]'s results in deterministic (task, destination) order,
    identical for every [jobs] (default 1). *)

val map_pairs :
  ?jobs:int ->
  ?tel:Disco_util.Telemetry.t ->
  ?dests_per_src:int ->
  pairs:int ->
  seed:int ->
  Disco_util.Rng.t ->
  Disco_graph.Graph.t ->
  (src:int -> dst:int -> dist:float -> 'b) ->
  'b array
(** [draw_pairs] + {!map_groups}. *)

val iter_groups :
  ?tel:Disco_util.Telemetry.t ->
  Disco_graph.Graph.t ->
  (int * int list) list ->
  (src:int -> dst:int -> dist:float -> unit) ->
  unit
[@@ocaml.deprecated "use Engine.plan/Engine.run (or Engine.map_groups)"]
(** Sequential closure-style loop over a drawn plan.
    @deprecated the task API supersedes it. *)

val iter_pairs :
  ?tel:Disco_util.Telemetry.t ->
  ?dests_per_src:int ->
  pairs:int ->
  Disco_util.Rng.t ->
  Disco_graph.Graph.t ->
  (src:int -> dst:int -> dist:float -> unit) ->
  unit
[@@ocaml.deprecated "use Engine.map_pairs"]
(** [draw_pairs] + [iter_groups].
    @deprecated the task API supersedes it. *)

type sampled = {
  router : string;
  flat_names : string;
  first : float array;  (** first-packet stretch samples *)
  later : float array;
  first_failures : int;  (** first-packet walks that were not delivered *)
  later_failures : int;
  state : float array;  (** per-node state entries *)
  tel : Disco_util.Telemetry.snapshot;
      (** per-router counters, frozen at measurement end *)
  elapsed_s : float;  (** build + route time for this router *)
}

val sample_pairs :
  ?pairs:int ->
  ?dests_per_src:int ->
  ?purpose:int ->
  ?jobs:int ->
  ?tel:Disco_util.Telemetry.t ->
  routers:Protocol.packed list ->
  Testbed.t ->
  sampled list
(** Build every router over the testbed and measure them all on the same
    sampled pairs (RNG stream [purpose], default 11). With [jobs > 1]
    (default 1) the builds and the per-source tasks fan out over a domain
    pool; each task queries forked router handles and private telemetry,
    so every field except [elapsed_s] (wall-clock) is independent of
    [jobs]. Per-router counters are merged into [tel] when given, and a
    {!Results} entry is recorded per router under the current figure. *)

val state_array : Protocol.packed -> Testbed.t -> float array
(** Build one router and collect its per-node state entries. *)

val find_sampled : string -> sampled list -> sampled option
