(** The one sampled-pairs measurement loop the whole evaluation shares.

    Sources are drawn uniformly and destinations grouped per source, so a
    single SSSP run provides the shortest-path oracle for a batch of
    pairs. Every figure that measures stretch or state either calls
    {!sample_pairs} (table-driven, over registry routers) or supplies a
    per-pair closure to {!iter_pairs}/{!iter_groups} — there is no other
    copy of this loop in the repo. *)

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]); the one timing source the
    harness uses. *)

val path_stretch : Disco_graph.Graph.t -> dist:float -> int list -> float
(** Stretch of one route given the true shortest distance. *)

val draw_pairs :
  ?dests_per_src:int ->
  Disco_util.Rng.t ->
  n:int ->
  pairs:int ->
  (int * int list) list
(** Sample ~[pairs] (source, destinations) groups ([dests_per_src]
    destinations per source, default 8; self-pairs dropped, duplicates
    merged). Drawing is separate from iteration so sweeps can reuse one
    draw across variants (e.g. the heuristic table). *)

val iter_groups :
  ?tel:Disco_util.Telemetry.t ->
  Disco_graph.Graph.t ->
  (int * int list) list ->
  (src:int -> dst:int -> dist:float -> unit) ->
  unit
(** Run the loop: one SSSP per source (counted on [tel]), then the closure
    for every reachable destination with its true distance. *)

val iter_pairs :
  ?tel:Disco_util.Telemetry.t ->
  ?dests_per_src:int ->
  pairs:int ->
  Disco_util.Rng.t ->
  Disco_graph.Graph.t ->
  (src:int -> dst:int -> dist:float -> unit) ->
  unit
(** [draw_pairs] + [iter_groups]. *)

type sampled = {
  router : string;
  flat_names : string;
  first : float array;  (** first-packet stretch samples *)
  later : float array;
  first_failures : int;  (** route_first returned None *)
  later_failures : int;
  state : float array;  (** per-node state entries *)
  tel : Disco_util.Telemetry.t;  (** per-router counters *)
  elapsed_s : float;  (** build + route time for this router *)
}

val sample_pairs :
  ?pairs:int ->
  ?dests_per_src:int ->
  ?purpose:int ->
  ?tel:Disco_util.Telemetry.t ->
  routers:Protocol.packed list ->
  Testbed.t ->
  sampled list
(** Build every router over the testbed and measure them all on the same
    sampled pairs (RNG stream [purpose], default 11). Per-router counters
    are merged into [tel] when given, and a {!Results} entry is recorded
    per router under the current figure. *)

val state_array : Protocol.packed -> Testbed.t -> float array
(** Build one router and collect its per-node state entries. *)

val find_sampled : string -> sampled list -> sampled option
