(* addr and header: how many bytes names, addresses and headers cost on
   the wire. Neither is a sampled-pairs measurement — addr is per-node,
   header samples pairs but never needs shortest-path distances — so both
   keep their own loops. *)

module Gen = Disco_graph.Gen
module Rng = Disco_util.Rng
module Stats = Disco_util.Stats
module Core = Disco_core

(* addr: §4.2 explicit-route address sizes on the router-level topology. *)
let addr (cfg : Engine.config) =
  let { Engine.seed; scale; _ } = cfg in
  let n = Scale.big_n scale in
  Report.section
    (Printf.sprintf
       "addr: explicit-route address size on router-level topology; n=%d" n);
  let tb = Testbed.make ~seed Gen.Router_level ~n in
  let nd = Testbed.nd tb in
  let sizes =
    Array.init n (fun v ->
        float_of_int (Core.Address.route_byte_size (Core.Nddisco.address nd v)))
  in
  Report.summary_line ~label:"route bytes" sizes;
  Report.kv "paper (192k-node CAIDA router map)" "mean=2.93 p95=5 max=10.625";
  (* Ablation: the fixed-width tree-address variant §4.2 rejects. The
     paper's claim is that it "would actually increase the mean address
     size in practice" — compare. *)
  let ta = Core.Tree_address.build tb.Testbed.graph nd.Core.Nddisco.landmarks in
  let fixed_bytes = float_of_int ((Core.Tree_address.bits ta + 7) / 8) in
  Report.kv "tree-address variant"
    (Printf.sprintf "fixed %d bits = %.0f bytes per address (vs %.2f mean explicit)"
       (Core.Tree_address.bits ta) fixed_bytes (Stats.mean sizes));
  Report.kv "paper's claim holds"
    (if fixed_bytes > Stats.mean sizes then "yes (fixed > mean explicit)"
     else "no at this scale")

(* header: wire cost of the packet header under the default heuristic vs
   Path Knowledge, which must carry the route's global node ids (§4.2). *)
let header (cfg : Engine.config) =
  let { Engine.seed; _ } = cfg in
  let n = 2048 in
  Report.section
    (Printf.sprintf "header: first-packet header bytes by heuristic; router-level n=%d" n);
  let tb = Testbed.make ~seed Gen.Router_level ~n in
  let rng = Testbed.rng tb ~purpose:61 in
  let collect heuristic =
    let sizes = ref [] in
    for _ = 1 to 400 do
      let s = Rng.int rng n and t = Rng.int rng n in
      if s <> t then begin
        let c = Core.Header.first_packet tb.Testbed.disco ~heuristic ~name_bytes:20 ~src:s ~dst:t in
        sizes := float_of_int c.Core.Header.total :: !sizes
      end
    done;
    Stats.summarize (Array.of_list !sizes)
  in
  let rows =
    List.map
      (fun h ->
        let s = collect h in
        [ Core.Shortcut.name h;
          Printf.sprintf "%.1f" s.Stats.mean;
          Printf.sprintf "%.0f" s.Stats.p95;
          Printf.sprintf "%.0f" s.Stats.max ])
      [ Core.Shortcut.No_path_knowledge; Core.Shortcut.Path_knowledge ]
  in
  Report.table ~header:[ "heuristic"; "header-bytes mean"; "p95"; "max" ] rows;
  Report.kv "note" "20B self-certifying name included in every header";
  (* Walked header cost across every registered scheme: the shared walker
     accounts the header as carried at each sending node, so these are
     data-plane measurements, not static address sizes. A smaller testbed
     keeps the expensive control planes (VRR's ring setup) affordable. *)
  let wn = 1024 in
  let wtb = Testbed.make ~seed Gen.Router_level ~n:wn in
  let graph = wtb.Testbed.graph in
  let wrng = Testbed.rng wtb ~purpose:61 in
  let tel = cfg.Engine.tel in
  let scheme_rows =
    List.map
      (fun packed ->
        let module R = (val packed : Protocol.ROUTER) in
        let module D = Core.Dataplane in
        let rt = R.build wtb in
        let maxes = ref [] and per_hop = ref [] in
        for _ = 1 to 300 do
          let s = Rng.int wrng wn and t = Rng.int wrng wn in
          if s <> t then begin
            let tr = Walk.first_trace (module R) rt ~tel ~graph ~src:s ~dst:t in
            if tr.D.hops > 0 then begin
              maxes := float_of_int tr.D.header_bytes_max :: !maxes;
              per_hop :=
                (float_of_int tr.D.header_bytes_total /. float_of_int tr.D.hops)
                :: !per_hop
            end
          end
        done;
        let sm = Stats.summarize (Array.of_list !maxes) in
        let sh = Stats.summarize (Array.of_list !per_hop) in
        [
          R.name;
          Printf.sprintf "%.1f" sh.Stats.mean;
          Printf.sprintf "%.1f" sm.Stats.mean;
          Printf.sprintf "%.0f" sm.Stats.max;
        ])
      (Routers.all ())
  in
  Report.section
    (Printf.sprintf
       "header (walked): per-scheme header bytes on walked first packets; \
        router-level n=%d" wn);
  Report.table
    ~header:[ "scheme"; "per-hop mean"; "per-packet max mean"; "max" ]
    scheme_rows;
  Report.kv "packets walked" (string_of_int tel.Disco_util.Telemetry.packets_walked)
