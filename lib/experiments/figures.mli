(** One runner per table/figure of the paper's evaluation (§5).

    The runner bodies live in the [Fig_*] modules (one module per group of
    related figures); this module is the registry mapping figure ids to
    them and the shared per-run bookkeeping. Each run gets a fresh
    {!Disco_util.Telemetry} record (threaded through the engine and the
    simulator), is timed, and appends a figure-level {!Results} entry plus
    a ["cost"] trailer line to stdout.

    Each runner prints its figure's series/rows to stdout (see
    {!Report}); EXPERIMENTS.md records the paper-vs-measured comparison.
    [scale] trades fidelity for runtime: [Small] shrinks topologies so the
    whole suite finishes in minutes; [Paper] uses the paper's sizes where
    feasible (the two CAIDA maps are replaced by synthetics at 16k nodes —
    see DESIGN.md §2). *)

type scale = Scale.t = Small | Paper

val scale_of_string : string -> scale option
val all_ids : string list

val run : ?seed:int -> ?jobs:int -> scale -> string -> unit
(** [run scale id] executes one experiment; raises [Invalid_argument] on
    an unknown id. [jobs] (default 1) is the runner's parallelism budget
    ({!Engine.config}); measured values are identical for every value. *)

val run_all : ?seed:int -> ?jobs:int -> scale -> unit
