(** Runner bodies behind the [address] figure ids. Only the
    entry points {!Figures} dispatches are exposed; everything else is a
    private helper. Runners print via {!Report} and accumulate onto the
    config's telemetry; see {!Engine.config} for the contract. *)

val addr : Engine.config -> unit
(** Explicit-route address sizes on the router-level topology (§4.2),
    plus the fixed-width tree-address ablation. *)

val header : Engine.config -> unit
(** First-packet header bytes by shortcutting heuristic (§4.2). *)
