(* Batched fast-path throughput engine (`bench --figure throughput`).

   Each scheme's headers are pre-encoded once into a single wire arena
   (the PR-3 codec), the scheme is compiled to its zero-alloc face
   ([ROUTER.compile]) and every lazily-built per-flow cache is forced
   ([fprime]) — then the timed loop is nothing but [decode_into] +
   [fast_walk] over one preallocated scratch packet.  Gc.minor_words
   around the loop confirms the L7 discipline at runtime: words/hop must
   sit at ~0, every hop the typed walker would take is re-taken through
   array indexing alone.  Rates are reported as hops/sec and packets/sec
   per scheme for first (resolving) and later (converged) headers. *)

module Graph = Disco_graph.Graph
module Telemetry = Disco_util.Telemetry
module D = Disco_core.Dataplane

type row = {
  scheme : string;
  kind : string;  (* "first" | "later" *)
  flows : int;  (* distinct pre-encoded headers *)
  packets : int;  (* flows * reps routed in the timed loop *)
  hops : int;
  delivered : int;
  seconds : float;
  minor_words : float;
  hops_per_sec : float;
  packets_per_sec : float;
  words_per_hop : float;
}

(* One scheme-kind batch: every flow's header on the wire, back to back. *)
type batch = { srcs : int array; offsets : int array; arena : Bytes.t }

(* Sampled flows, deterministic in the testbed seed (fresh stream so the
   alloc figure's pair draw is untouched). *)
let sample_flows tb ~count =
  let rng = Testbed.rng tb ~purpose:73 in
  let n = Graph.n tb.Testbed.graph in
  Array.init count (fun _ ->
      let s = Disco_util.Rng.int rng n in
      let rec draw () =
        let d = Disco_util.Rng.int rng n in
        if d = s then draw () else d
      in
      (s, draw ()))

let encode_batch (type a) (module R : Protocol.ROUTER with type t = a)
    (rt : a) ~graph ~kind ~flows (plan : D.fast_plan) =
  let tel = Telemetry.create () in
  let header =
    match kind with
    | "first" -> fun ~src ~dst -> R.first_header rt ~tel ~src ~dst
    | _ -> fun ~src ~dst -> R.later_header rt ~tel ~src ~dst
  in
  let count = Array.length flows in
  let srcs = Array.map fst flows in
  let headers =
    Array.map
      (fun (src, dst) ->
        plan.D.fprime ~src ~dst;
        header ~src ~dst)
      flows
  in
  let offsets = Array.make count 0 in
  let total = ref 0 in
  Array.iteri
    (fun i h ->
      offsets.(i) <- !total;
      total := !total + D.encoded_size graph ~src:srcs.(i) h)
    headers;
  let arena = Bytes.create !total in
  Array.iteri
    (fun i h ->
      ignore (D.encode_header graph ~src:srcs.(i) h arena ~pos:offsets.(i) : int))
    headers;
  { srcs; offsets; arena }

(* The measured region: rehydrate each flow from the arena and route it.
   Everything here must be allocation-free — [decode_into], [fast_walk]
   and the registered [fstep]s are all on the L7 hot manifest. *)
let route_batch graph step pkt batch ~ttl ~trail ~reps hops delivered =
  let count = Array.length batch.srcs in
  for _ = 1 to reps do
    for i = 0 to count - 1 do
      let src = Array.unsafe_get batch.srcs i in
      D.decode_into graph pkt batch.arena
        ~pos:(Array.unsafe_get batch.offsets i)
        ~src;
      D.fast_walk graph ~step pkt ~src ~ttl ~trail;
      hops := !hops + pkt.D.phops;
      if pkt.D.pdelivered then incr delivered
    done
  done

let measure_kind (type a) (module R : Protocol.ROUTER with type t = a)
    (rt : a) ~graph ~kind ~flows ~reps =
  let plan = R.compile rt in
  let batch = encode_batch (module R) rt ~graph ~kind ~flows plan in
  let ttl = R.ttl_factor * Graph.n graph in
  let pkt = D.packet_create graph in
  let trail = Array.make (ttl + 1) (-1) in
  let hops = ref 0 and delivered = ref 0 in
  (* Warm-up rep: fault in code paths and touch the arena once. *)
  route_batch graph plan.D.fstep pkt batch ~ttl ~trail ~reps:1 hops delivered;
  hops := 0;
  delivered := 0;
  Gc.full_major ();
  let before = Gc.minor_words () in
  let t0 = Telemetry.now_s () in
  route_batch graph plan.D.fstep pkt batch ~ttl ~trail ~reps hops delivered;
  let seconds = Telemetry.now_s () -. t0 in
  let minor_words = Gc.minor_words () -. before in
  let flows_n = Array.length flows in
  let packets = flows_n * reps in
  let rate x = if seconds > 0.0 then x /. seconds else 0.0 in
  {
    scheme = R.name;
    kind;
    flows = flows_n;
    packets;
    hops = !hops;
    delivered = !delivered;
    seconds;
    minor_words;
    hops_per_sec = rate (float_of_int !hops);
    packets_per_sec = rate (float_of_int packets);
    words_per_hop =
      (if !hops = 0 then 0.0 else minor_words /. float_of_int !hops);
  }

let measure_scheme tb ~flows ~reps (p : Protocol.packed) =
  let (module R) = p in
  let rt = R.build tb in
  let graph = tb.Testbed.graph in
  [
    measure_kind (module R) rt ~graph ~kind:"first" ~flows ~reps;
    measure_kind (module R) rt ~graph ~kind:"later" ~flows ~reps;
  ]

let measure ~seed ~n ~flows ~reps =
  let tb = Testbed.make ~seed Disco_graph.Gen.Geometric ~n in
  let pairs = sample_flows tb ~count:flows in
  List.concat_map (measure_scheme tb ~flows:pairs ~reps) (Routers.all ())

let json_of_rows ~seed ~n ~flows ~reps rows =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf
       "{\n  \"figure\": \"throughput\",\n  \"seed\": %d,\n  \"n\": %d,\n  \
        \"flows_per_row\": %d,\n  \"reps\": %d,\n  \"rows\": [\n" seed n flows
       reps);
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"scheme\": %S, \"kind\": %S, \"flows\": %d, \"packets\": \
            %d, \"hops\": %d, \"delivered\": %d, \"seconds\": %.6f, \
            \"minor_words\": %.0f, \"hops_per_sec\": %.0f, \
            \"packets_per_sec\": %.0f, \"words_per_hop\": %.4f}%s\n"
           r.scheme r.kind r.flows r.packets r.hops r.delivered r.seconds
           r.minor_words r.hops_per_sec r.packets_per_sec r.words_per_hop
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b
