(* fig3, fig6 and the vicinity ablation: stretch distributions. *)

module Gen = Disco_graph.Gen
module Rng = Disco_util.Rng
module Stats = Disco_util.Stats
module Core = Disco_core

(* fig3: stretch CDFs (first and later packets) on the same topologies. *)
let fig3 (cfg : Engine.config) =
  let { Engine.seed; scale; jobs; _ } = cfg in
  Report.section
    (Printf.sprintf "fig3: stretch CDF over src-dst pairs; n=%d" (Scale.big_n scale));
  List.iter
    (fun (kind, n) ->
      let tb = Testbed.make ~seed kind ~n in
      let st = Metrics.stretch ~pairs:(Scale.pairs_for scale) ~jobs tb in
      Printf.printf " topology=%s\n" (Gen.kind_name kind);
      Report.summary_line ~label:"disco-first" st.Metrics.s_disco.Metrics.first;
      Report.summary_line ~label:"disco-later" st.Metrics.s_disco.Metrics.later;
      Report.summary_line ~label:"s4-first" st.Metrics.s_s4.Metrics.first;
      Report.summary_line ~label:"s4-later" st.Metrics.s_s4.Metrics.later;
      let pre = Printf.sprintf "fig3.%s" (Gen.kind_name kind) in
      Report.cdf_series ~label:(pre ^ ".disco-first") st.Metrics.s_disco.Metrics.first;
      Report.cdf_series ~label:(pre ^ ".disco-later") st.Metrics.s_disco.Metrics.later;
      Report.cdf_series ~label:(pre ^ ".s4-first") st.Metrics.s_s4.Metrics.first;
      Report.cdf_series ~label:(pre ^ ".s4-later") st.Metrics.s_s4.Metrics.later)
    (Scale.topologies scale)

(* fig6: mean stretch per shortcutting heuristic across four topologies. *)
let fig6 (cfg : Engine.config) =
  let { Engine.seed; scale; jobs; _ } = cfg in
  Report.section "fig6: mean stretch by shortcutting heuristic";
  let n_big = Scale.big_n scale in
  let topologies =
    [
      (Gen.As_level, n_big, "as-level");
      (Gen.Router_level, n_big, "router-level");
      (Gen.Geometric, n_big, Printf.sprintf "geometric-%d" n_big);
      (Gen.Gnm, n_big, Printf.sprintf "gnm-%d" n_big);
    ]
  in
  let columns =
    List.map
      (fun (kind, n, label) ->
        let tb = Testbed.make ~seed kind ~n in
        (label, Metrics.mean_stretch_by_heuristic ~pairs:600 ~jobs tb))
      topologies
  in
  let rows =
    List.map
      (fun h ->
        Core.Shortcut.name h
        :: List.map
             (fun (_, col) -> Printf.sprintf "%.3f" (List.assoc h col))
             columns)
      Core.Shortcut.all
  in
  Report.table
    ~header:("heuristic" :: List.map (fun (l, _) -> l) columns)
    rows

(* vicinity: ablation of the central constant. DESIGN.md §4 pins vicinities
   at c * sqrt(n log n); shrinking c saves state but erodes the w.h.p.
   guarantees (landmark-in-vicinity, group-member-in-vicinity) that the
   stretch bounds rest on - this sweep shows where they break. *)
let vicinity (cfg : Engine.config) =
  let { Engine.seed; tel; jobs; _ } = cfg in
  let n = 1024 in
  Report.section
    (Printf.sprintf "vicinity: state/stretch vs the vicinity constant; geometric n=%d" n);
  let rows =
    List.map
      (fun factor ->
        let params = { Core.Params.default with Core.Params.vicinity_factor = factor } in
        let tb = Testbed.make ~seed ~params Gen.Geometric ~n in
        let st = Metrics.state tb in
        let rng = Testbed.rng tb ~purpose:51 in
        let samples =
          Engine.map_pairs ~jobs ~tel ~dests_per_src:4 ~pairs:800
            ~seed:(Rng.derive seed 51) rng tb.Testbed.graph
            (fun ~src:s ~dst:t ~dist ->
              let fallback =
                match Core.Disco.classify_first tb.Testbed.disco ~src:s ~dst:t with
                | Core.Disco.Resolution_fallback -> true
                | _ -> false
              in
              ( Engine.path_stretch tb.Testbed.graph ~dist
                  (Core.Disco.route_first tb.Testbed.disco ~src:s ~dst:t),
                fallback ))
        in
        let total = Array.length samples in
        let fallbacks =
          Array.fold_left (fun a (_, f) -> if f then a + 1 else a) 0 samples
        in
        let sr = Stats.summarize (Array.map fst samples) in
        [
          Printf.sprintf "%.2f" factor;
          string_of_int (Core.Params.vicinity_size params ~n);
          Printf.sprintf "%.0f" (Stats.mean st.Metrics.disco);
          Printf.sprintf "%.3f" sr.Stats.mean;
          Printf.sprintf "%.3f" sr.Stats.max;
          Printf.sprintf "%.2f%%"
            (100.0 *. float_of_int fallbacks /. float_of_int (max 1 total));
        ])
      [ 0.25; 0.5; 1.0; 2.0 ]
  in
  Report.table
    ~header:
      [ "factor"; "vicinity k"; "disco state mean"; "first stretch mean";
        "first stretch max"; "fallback rate" ]
    rows
