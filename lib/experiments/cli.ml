open Cmdliner

let scale_conv : Scale.t Arg.conv =
  let parse s =
    match Scale.of_string s with
    | Some v -> Ok v
    | None ->
        Error (`Msg (Printf.sprintf "unknown scale %S (expected small or paper)" s))
  in
  let print fmt s = Format.pp_print_string fmt (Scale.to_string s) in
  Arg.conv (parse, print)

let scale_term =
  let doc = "Topology scale: small (minutes) or paper (paper-sized synthetics)." in
  Arg.(value & opt scale_conv Scale.Small & info [ "scale" ] ~docv:"SCALE" ~doc)

let seed_term =
  let doc = "Deterministic RNG seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs_conv : int Arg.conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> Ok n
    | Some _ -> Error (`Msg "must be >= 0 (0 = one worker per available core)")
    | None -> Error (`Msg (Printf.sprintf "invalid value %S, expected an integer" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_term =
  let doc =
    "Worker domains for the parallel engine (0 = one per available core). \
     Measured results are bit-identical for every value; only wall-clock \
     changes."
  in
  Term.(
    const Disco_util.Pool.resolve_jobs
    $ Arg.(value & opt jobs_conv 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc))

let scheme_conv ~extra : string Arg.conv =
  let parse s =
    let names = Routers.names () @ extra in
    if List.mem s names then Ok s
    else
      Error
        (`Msg
          (Printf.sprintf "unknown scheme %S (expected one of: %s)" s
             (String.concat ", " names)))
  in
  Arg.conv (parse, Format.pp_print_string)

let scheme_term ?(extra = []) ~default () =
  let doc =
    "Routing scheme: " ^ String.concat ", " (Routers.names () @ extra) ^ "."
  in
  Arg.(
    value
    & opt (scheme_conv ~extra) default
    & info [ "scheme"; "protocol"; "p" ] ~docv:"SCHEME" ~doc)

let figure_conv ~extra : string Arg.conv =
  let ids = Figures.all_ids @ extra in
  let parse s =
    if List.mem s ids then Ok s
    else
      Error
        (`Msg
          (Printf.sprintf "unknown figure %S (expected one of: %s)" s
             (String.concat ", " ids)))
  in
  Arg.conv (parse, Format.pp_print_string)

let figure_term ?(extra = []) ~default () =
  let doc =
    "Figure/table to regenerate: "
    ^ String.concat ", " (Figures.all_ids @ extra)
    ^ "."
  in
  Arg.(
    value
    & opt (figure_conv ~extra) default
    & info [ "figure"; "f"; "id" ] ~docv:"ID" ~doc)
