(** Batched fast-path throughput engine ([bench --figure throughput]).

    Pre-encodes every sampled flow's header into one wire arena, compiles
    each scheme to its zero-alloc face ({!Protocol.ROUTER.compile}) and
    times nothing but {!Disco_core.Dataplane.decode_into} +
    {!Disco_core.Dataplane.fast_walk} over a single preallocated scratch
    packet.  [Gc.minor_words] around the timed loop is the runtime
    counterpart of disco-lint's L7 proof: [words_per_hop] must sit at
    ~0.  The typed walker remains the semantic oracle (disco-check's
    fast≡typed differential); this figure only measures the rate. *)

type row = {
  scheme : string;
  kind : string;  (** ["first"] (resolving) or ["later"] (converged) *)
  flows : int;  (** distinct pre-encoded headers in the batch *)
  packets : int;  (** [flows * reps] routed inside the timed loop *)
  hops : int;
  delivered : int;
  seconds : float;
  minor_words : float;  (** allocation across the whole timed loop *)
  hops_per_sec : float;
  packets_per_sec : float;
  words_per_hop : float;
}

val measure : seed:int -> n:int -> flows:int -> reps:int -> row list
(** Build a geometric testbed, sample [flows] deterministic pairs and
    measure every registered scheme for first and later headers — two
    rows per scheme, registration order. *)

val json_of_rows :
  seed:int -> n:int -> flows:int -> reps:int -> row list -> string
(** The [BENCH_throughput.json] snapshot (hand-built, schema mirrors
    [BENCH_alloc.json]). *)
