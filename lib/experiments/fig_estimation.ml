(* nerror, synopsis and churn: what happens when nodes only estimate n,
   and how n is estimated in the first place. *)

module Gen = Disco_graph.Gen
module Rng = Disco_util.Rng
module Stats = Disco_util.Stats
module Core = Disco_core

(* nerror: random error in each node's estimate of n (§5). n = 2048 puts
   the group-width boundary (k flips at n ~ 1844) inside the error range,
   so nodes genuinely disagree on the grouping — at n = 1024 even ±60%
   error leaves every node with the same k and the experiment shows
   nothing. *)
let nerror (cfg : Engine.config) =
  let { Engine.seed; tel; jobs; _ } = cfg in
  Report.section "nerror: error in estimating n (G(n,m), n=2048)";
  let n = 2048 in
  let rng = Rng.create ((seed * 31337) + 5) in
  let graph = Gen.gnm ~rng ~n ~m:(4 * n) in
  let nd = Core.Nddisco.build ~rng graph in
  List.iter
    (fun error ->
      let est_rng = Rng.create ((seed * 7) + int_of_float (error *. 100.0)) in
      let n_estimates =
        Array.init n (fun _ ->
            let factor = 1.0 +. Rng.float est_rng (2.0 *. error) -. error in
            max 2 (int_of_float (float_of_int n *. factor)))
      in
      let groups =
        Core.Groups.build_with_estimates ~hashes:nd.Core.Nddisco.hashes ~n_estimates
      in
      let disco = Core.Disco.of_nddisco ~rng:(Rng.create (seed + 77)) ~groups nd in
      (* Sampled pairs: how often does the group mechanism fail over to the
         resolution database, and what's the mean first-packet stretch? *)
      let pair_rng = Rng.create (seed + 991) in
      let samples =
        Engine.map_pairs ~jobs ~tel ~dests_per_src:5 ~pairs:1500
          ~seed:(Rng.derive seed 991) pair_rng graph
          (fun ~src:s ~dst:t ~dist ->
            let fallback =
              match Core.Disco.classify_first disco ~src:s ~dst:t with
              | Core.Disco.Resolution_fallback -> true
              | _ -> false
            in
            ( Engine.path_stretch graph ~dist
                (Core.Disco.route_first disco ~src:s ~dst:t),
              fallback ))
      in
      let fallbacks =
        Array.fold_left (fun a (_, f) -> if f then a + 1 else a) 0 samples
      in
      Report.kv
        (Printf.sprintf "error ±%.0f%%" (error *. 100.0))
        (Printf.sprintf "fallback rate=%.4f mean first stretch=%.4f"
           (float_of_int fallbacks /. float_of_int (max 1 (Array.length samples)))
           (Stats.mean (Array.map fst samples))))
    [ 0.0; 0.4; 0.6 ]

(* synopsis: §4.1 estimate-n accuracy via synopsis diffusion. The sketch
   of a fixed name set is deterministic, so one run is a single
   realization; salt the names over several runs and report the average
   absolute error, matching the paper's "within 10% on average". *)
let synopsis (cfg : Engine.config) =
  let { Engine.seed; _ } = cfg in
  Report.section "synopsis: estimating n by synopsis diffusion (G(n,m), n=1024)";
  let n = 1024 in
  let rng = Rng.create (seed * 13) in
  let graph = Gen.gnm ~rng ~n ~m:(4 * n) in
  let runs = 8 in
  List.iter
    (fun buckets ->
      let bytes = ref 0 and msgs = ref 0 and rounds = ref 0 in
      let errors =
        Array.init runs (fun salt ->
            let node_name v = Printf.sprintf "run%d/%s" salt (Core.Name.default v) in
            let o =
              Disco_synopsis.Diffusion.estimate_n ~graph ~node_name ~buckets ()
            in
            bytes := o.Disco_synopsis.Diffusion.sketch_bytes;
            msgs := o.Disco_synopsis.Diffusion.messages;
            rounds := o.Disco_synopsis.Diffusion.rounds_run;
            (* All nodes converge to the global sketch; read node 0. *)
            Float.abs (o.Disco_synopsis.Diffusion.estimates.(0) -. float_of_int n)
            /. float_of_int n)
      in
      Report.kv
        (Printf.sprintf "%d buckets (%dB synopsis)" buckets !bytes)
        (Printf.sprintf
           "mean |error|=%.1f%% max |error|=%.1f%% over %d runs (rounds=%d msgs/run=%d)"
           (100.0 *. Stats.mean errors)
           (100.0 *. (Stats.summarize errors).Stats.max)
           runs !rounds !msgs))
    [ 32; 64; 128 ]

(* churn: §4.2's factor-2 hysteresis rule for landmark status, vs the
   naive policy of re-drawing on every estimate update. *)
let churn (cfg : Engine.config) =
  let { Engine.seed; _ } = cfg in
  Report.section "churn: landmark flips while n grows 1k -> ~8k (+10%/step)";
  let trajectory =
    let rec go acc n k =
      if k = 0 then List.rev acc else go ((n * 11 / 10) :: acc) (n * 11 / 10) (k - 1)
    in
    go [] 1024 22
  in
  List.iter
    (fun hysteresis ->
      let c =
        Core.Landmark_churn.create ~rng:(Rng.create (seed * 3))
          ~params:Core.Params.default ~hysteresis ~n0:1024
      in
      List.iter (fun n -> ignore (Core.Landmark_churn.observe c ~n : int)) trajectory;
      Report.kv
        (if hysteresis then "factor-2 hysteresis (the paper's rule)" else "naive re-draw")
        (Printf.sprintf "%d total status flips; %d landmarks at n=%d"
           (Core.Landmark_churn.total_flips c)
           (Core.Landmark_churn.landmark_count c)
           (Core.Landmark_churn.population c)))
    [ true; false ]
