(* control and policy: control-plane state and operator-chosen landmarks. *)

module Graph = Disco_graph.Graph
module Gen = Disco_graph.Gen
module Rng = Disco_util.Rng
module Stats = Disco_util.Stats
module Core = Disco_core

(* control: Theorem 2 — control-plane state is O(delta sqrt(n log n))
   under plain path vector but O(sqrt(n log n)) with forgetful routing. *)
let control (cfg : Engine.config) =
  let { Engine.seed; scale; tel; _ } = cfg in
  let n = match scale with Scale.Small -> 4096 | Scale.Paper -> 16384 in
  Report.section
    (Printf.sprintf "control: control-plane state, plain vs forgetful routing; router-level n=%d" n);
  let tb = Testbed.make ~seed Gen.Router_level ~n in
  let nd = Testbed.nd tb in
  let data_entries v =
    Core.Nddisco.total_entries (Core.Nddisco.state_entries nd v)
  in
  let plain =
    Array.init n (fun v ->
        float_of_int (Graph.degree tb.Testbed.graph v * data_entries v))
  in
  let forgetful = Array.init n (fun v -> float_of_int (data_entries v)) in
  Report.summary_line ~label:"plain path vector (delta x entries)" plain;
  Report.summary_line ~label:"forgetful routing" forgetful;
  (* Measured, not modeled: run the dynamic protocol and count the
     adjacency-RIB entries a non-forgetful implementation would retain. *)
  let mn = 1024 in
  let rng = Rng.create (seed * 37) in
  let graph = Gen.gnm ~rng ~n:mn ~m:(4 * mn) in
  let dnd = Core.Nddisco.build ~rng graph in
  let flags = dnd.Core.Nddisco.landmarks.Core.Landmarks.is_landmark in
  let k = Core.Params.vicinity_size Core.Params.default ~n:mn in
  let r =
    Disco_pathvector.Pathvector.run ~telemetry:tel ~graph
      ~mode:(Disco_pathvector.Pathvector.Landmarks_and_k_closest { landmarks = flags; k })
      ()
  in
  Printf.printf " measured on the event simulator (G(n,m), n=%d):\n" mn;
  Report.summary_line ~label:"adjacency RIB (non-forgetful)"
    (Array.map float_of_int r.Disco_pathvector.Pathvector.adj_rib_entries);
  Report.summary_line ~label:"best routes only (forgetful)"
    (Array.map float_of_int (Disco_pathvector.Pathvector.table_sizes r))

(* policy: §6 — operators may choose landmarks non-randomly as long as
   there are O~(sqrt n) of them and every vicinity contains one. Compare
   random landmarks with degree-based selection on the AS-like topology. *)
let policy (cfg : Engine.config) =
  let { Engine.seed; tel; jobs; _ } = cfg in
  Report.section "policy: random vs operator-chosen (highest-degree) landmarks";
  let n = 2048 in
  let rng = Rng.create (seed * 17) in
  let graph = Gen.by_kind ~rng Gen.As_level ~n in
  let expected = Core.Params.vicinity_size Core.Params.default ~n in
  let by_degree =
    let nodes = Array.init n Fun.id in
    Array.sort (fun a b -> compare (Graph.degree graph b) (Graph.degree graph a)) nodes;
    Array.sub nodes 0 expected
  in
  let measure label landmark_ids =
    let nd = Core.Nddisco.build ?landmark_ids ~rng:(Rng.create (seed + 1)) graph in
    let disco = Core.Disco.of_nddisco ~rng:(Rng.create (seed + 2)) nd in
    let pair_rng = Rng.create (seed + 3) in
    let stretches =
      Engine.map_pairs ~jobs ~tel ~dests_per_src:5 ~pairs:1000
        ~seed:(Rng.derive seed 3) pair_rng graph (fun ~src:s ~dst:t ~dist ->
          Engine.path_stretch graph ~dist
            (Core.Disco.route_first disco ~src:s ~dst:t))
    in
    let addr_bytes =
      Array.init n (fun v ->
          float_of_int (Core.Address.route_byte_size (Core.Nddisco.address nd v)))
    in
    Report.kv label
      (Printf.sprintf
         "landmarks=%d mean first stretch=%.3f mean address=%.2fB max address=%.0fB"
         (Core.Landmarks.count nd.Core.Nddisco.landmarks)
         (Stats.mean stretches)
         (Stats.mean addr_bytes)
         (Stats.summarize addr_bytes).Stats.max)
  in
  measure "random (the default)" None;
  measure "highest-degree" (Some by_degree)
