(** Discrete event simulator.

    Drives the dynamic-protocol experiments: path-vector convergence and
    Disco's overlay dissemination (Fig 8), and synopsis-diffusion gossip.
    Nodes exchange messages over the links of a {!Disco_graph.Graph.t};
    delivery takes the link's weight (latency). Events at equal times fire
    in schedule order, so runs are fully deterministic.

    Message accounting matches the paper's metric: every protocol message
    sent to a neighbor counts once toward the sender's total. *)

type 'msg t

val create :
  ?telemetry:Disco_util.Telemetry.t -> graph:Disco_graph.Graph.t -> unit -> 'msg t
(** [create ?telemetry ~graph ()] builds an empty simulator over [graph].
    When [telemetry] is given, every message send is also counted there
    (in addition to the simulator's own {!messages_sent} accounting). *)

val set_handler : 'msg t -> (int -> src:int -> 'msg -> unit) -> unit
(** [set_handler t f] installs the per-node message handler
    [f node ~src msg]; must be called before {!run}. Handlers may call
    {!send} and {!schedule}. *)

val time : _ t -> float
(** Current simulation time. *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Send over a graph link (src and dst must be adjacent); counts one
    message against [src] and delivers after the link latency.
    @raise Invalid_argument if [src]–[dst] is not an edge. *)

val send_direct : 'msg t -> src:int -> dst:int -> latency:float -> 'msg -> unit
(** Overlay-bypass delivery for simulated TCP connections between
    non-adjacent nodes (Disco's overlay links); still counts one message
    against [src]. *)

val schedule : _ t -> delay:float -> (unit -> unit) -> unit
(** Run a callback after [delay] simulated time units. *)

val run : ?until:float -> _ t -> unit
(** Process events until the queue drains (convergence) or [until]. *)

val messages_sent : _ t -> int
(** Total messages sent so far. *)

val messages_by_node : _ t -> int array

val events_processed : _ t -> int
