module Heap = Disco_util.Heap
module Graph = Disco_graph.Graph

type 'msg event = Deliver of { dst : int; src : int; msg : 'msg } | Timer of (unit -> unit)

type 'msg t = {
  graph : Graph.t;
  events : 'msg event Heap.t;
  mutable now : float;
  mutable handler : (int -> src:int -> 'msg -> unit) option;
  sent : int array;
  mutable total_sent : int;
  mutable processed : int;
  telemetry : Disco_util.Telemetry.t option;
}

let create ?telemetry ~graph () =
  {
    graph;
    events = Heap.create ();
    now = 0.0;
    handler = None;
    sent = Array.make (Graph.n graph) 0;
    total_sent = 0;
    processed = 0;
    telemetry;
  }

let set_handler t f = t.handler <- Some f
let time t = t.now

let count_send t src =
  t.sent.(src) <- t.sent.(src) + 1;
  t.total_sent <- t.total_sent + 1;
  match t.telemetry with
  | Some tel -> Disco_util.Telemetry.message_sent tel
  | None -> ()

let send t ~src ~dst msg =
  match Graph.edge_weight t.graph src dst with
  | None -> invalid_arg "Sim.send: src and dst are not adjacent"
  | Some latency ->
      count_send t src;
      Heap.push t.events (t.now +. latency) (Deliver { dst; src; msg })

let send_direct t ~src ~dst ~latency msg =
  if latency < 0.0 then invalid_arg "Sim.send_direct: negative latency";
  count_send t src;
  Heap.push t.events (t.now +. latency) (Deliver { dst; src; msg })

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  Heap.push t.events (t.now +. delay) (Timer f)

let run ?until t =
  let handler =
    match t.handler with
    | Some h -> h
    | None -> invalid_arg "Sim.run: no handler installed"
  in
  let continue = ref true in
  while !continue do
    match Heap.peek t.events with
    | None -> continue := false
    | Some (at, _) when (match until with Some u -> at > u | None -> false) ->
        continue := false
    | Some _ -> (
        match Heap.pop t.events with
        | None -> continue := false
        | Some (at, ev) ->
            t.now <- at;
            t.processed <- t.processed + 1;
            (match ev with
            | Deliver { dst; src; msg } -> handler dst ~src msg
            | Timer f -> f ()))
  done

let messages_sent t = t.total_sent
let messages_by_node t = Array.copy t.sent
let events_processed t = t.processed
