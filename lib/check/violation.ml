type kind =
  | Invalid_path of { phase : string; src : int; dst : int; reason : string }
  | Delivery_failure of { phase : string; src : int; dst : int }
  | Beats_oracle of { phase : string; src : int; dst : int; stretch : float }
  | Stretch_exceeded of {
      phase : string;
      src : int;
      dst : int;
      stretch : float;
      bound : float;
    }
  | Negative_state of { node : int; entries : int }
  | State_exceeded of { node : int; entries : int; bound : float }
  | Nondeterministic of { what : string }
  | Differential_mismatch of { other : string; src : int; dst : int; detail : string }
  | Churn_violation of { detail : string }
  | Walk_divergence of { phase : string; src : int; dst : int; detail : string }
  | Dataplane_error of { phase : string; src : int; dst : int; detail : string }
  | Fastpath_divergence of { phase : string; src : int; dst : int; detail : string }

type t = { scheme : string; kind : kind }

let describe_kind = function
  | Invalid_path { phase; src; dst; reason } ->
      Printf.sprintf "invalid %s-packet path %d->%d: %s" phase src dst reason
  | Delivery_failure { phase; src; dst } ->
      Printf.sprintf "%s-packet delivery failed for reachable pair %d->%d" phase src
        dst
  | Beats_oracle { phase; src; dst; stretch } ->
      Printf.sprintf
        "%s-packet route %d->%d shorter than the shortest path (stretch %.6f)" phase
        src dst stretch
  | Stretch_exceeded { phase; src; dst; stretch; bound } ->
      Printf.sprintf "%s-packet stretch %.4f > bound %.2f for %d->%d" phase stretch
        bound src dst
  | Negative_state { node; entries } ->
      Printf.sprintf "negative state (%d entries) at node %d" entries node
  | State_exceeded { node; entries; bound } ->
      Printf.sprintf "state %d entries > bound %.1f at node %d" entries bound node
  | Nondeterministic { what } -> Printf.sprintf "nondeterministic %s under a fixed seed" what
  | Differential_mismatch { other; src; dst; detail } ->
      Printf.sprintf "disagrees with %s on %d->%d: %s" other src dst detail
  | Churn_violation { detail } -> detail
  | Walk_divergence { phase; src; dst; detail } ->
      Printf.sprintf "%s-packet walk diverges from the oracle on %d->%d: %s"
        phase src dst detail
  | Dataplane_error { phase; src; dst; detail } ->
      Printf.sprintf "%s-packet data plane errored on %d->%d: %s" phase src
        dst detail
  | Fastpath_divergence { phase; src; dst; detail } ->
      Printf.sprintf "%s-packet fast path diverges from the typed walk on %d->%d: %s"
        phase src dst detail

let describe t = Printf.sprintf "[%s] %s" t.scheme (describe_kind t.kind)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let kind_label = function
  | Invalid_path _ -> "invalid-path"
  | Delivery_failure _ -> "delivery-failure"
  | Beats_oracle _ -> "beats-oracle"
  | Stretch_exceeded _ -> "stretch-exceeded"
  | Negative_state _ -> "negative-state"
  | State_exceeded _ -> "state-exceeded"
  | Nondeterministic _ -> "nondeterministic"
  | Differential_mismatch _ -> "differential-mismatch"
  | Churn_violation _ -> "churn-violation"
  | Walk_divergence _ -> "walk-divergence"
  | Dataplane_error _ -> "dataplane-error"
  | Fastpath_divergence _ -> "fastpath-divergence"

let to_json t =
  Printf.sprintf {|{"scheme":"%s","kind":"%s","detail":"%s"}|} (escape t.scheme)
    (kind_label t.kind)
    (escape (describe_kind t.kind))
