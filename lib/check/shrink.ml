open Scenario

(* Order a candidate list from most to least aggressive: the greedy loop
   takes the first variant that still fails, so big cuts are tried first. *)
let candidates (sc : t) =
  let smaller_n =
    [ sc.n / 2; sc.n * 3 / 4; sc.n - 1 ]
    |> List.map (fun n -> max min_nodes n)
    |> List.filter (fun n -> n < sc.n)
    |> List.map (fun n -> { sc with n })
  in
  let fewer_pairs =
    [ sc.pairs / 2; sc.pairs - 1 ]
    |> List.map (fun p -> max 1 p)
    |> List.filter (fun p -> p < sc.pairs)
    |> List.map (fun pairs -> { sc with pairs })
  in
  let no_churn = if sc.churn_steps > 0 then [ { sc with churn_steps = 0 } ] else [] in
  let plain_workload =
    if sc.workload <> Uniform then [ { sc with workload = Uniform } ] else []
  in
  let simpler_family =
    (* Gnm is the least structured family; Ring the smallest to eyeball. *)
    match sc.family with
    | Gnm -> []
    | Ring -> [ { sc with family = Gnm } ]
    | _ -> [ { sc with family = Gnm }; { sc with family = Ring } ]
  in
  List.concat [ smaller_n; no_churn; plain_workload; fewer_pairs; simpler_family ]
  |> List.filter (fun c -> c <> sc)

let minimize ?(budget = 40) ~still_fails sc =
  let spent = ref 0 in
  let rec go sc =
    let rec try_candidates = function
      | [] -> sc
      | c :: rest ->
          if !spent >= budget then sc
          else begin
            incr spent;
            if still_fails c then go c else try_candidates rest
          end
    in
    try_candidates (candidates sc)
  in
  let minimized = go sc in
  (minimized, !spent)
