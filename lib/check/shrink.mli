(** Greedy scenario minimization.

    Given a failing scenario, repeatedly try smaller variants — fewer
    nodes, fewer pairs, no churn, a simpler workload, a simpler family —
    keeping any variant on which [still_fails] holds, until no candidate
    fails. The seed is never changed, so the minimized scenario replays
    with the same [--replay] string.

    [budget] bounds how many candidate runs the shrinker may spend
    (each one re-runs every router over a fresh testbed). *)

val candidates : Scenario.t -> Scenario.t list
(** Strictly-smaller variants of a scenario, most aggressive first. *)

val minimize :
  ?budget:int -> still_fails:(Scenario.t -> bool) -> Scenario.t -> Scenario.t * int
(** The minimized scenario and how many candidate runs were spent. *)
