type counterexample = {
  original : Scenario.t;
  minimized : Scenario.t;
  shrink_runs : int;
  violations : Violation.t list;
}

type summary = {
  run_seed : int;
  cases : int;
  max_nodes : int;
  schemes : string list;
  total_pairs : int;
  total_route_failures : int;
  counterexamples : counterexample list;
}

let passed s = s.counterexamples = []

let shrink_failure ?routers ?spec_of ?shrink_budget sc =
  let still_fails c = Runner.failed (Runner.run ?routers ?spec_of c) in
  let minimized, shrink_runs = Shrink.minimize ?budget:shrink_budget ~still_fails sc in
  let final = Runner.run ?routers ?spec_of minimized in
  { original = sc; minimized; shrink_runs; violations = final.Runner.violations }

let check_scenario ?routers ?spec_of ?shrink_budget sc =
  let outcome = Runner.run ?routers ?spec_of sc in
  if Runner.failed outcome then
    Some (shrink_failure ?routers ?spec_of ?shrink_budget sc)
  else None

let run_cases ?routers ?spec_of ?shrink_budget ?on_case ~run_seed ~cases ~max_nodes
    () =
  let schemes = ref [] in
  let total_pairs = ref 0 in
  let total_route_failures = ref 0 in
  let counterexamples = ref [] in
  for case = 0 to cases - 1 do
    let sc = Scenario.generate ~run_seed ~case ~max_nodes in
    let outcome = Runner.run ?routers ?spec_of sc in
    if !schemes = [] then schemes := outcome.Runner.schemes;
    total_pairs := !total_pairs + outcome.Runner.pairs_checked;
    total_route_failures := !total_route_failures + outcome.Runner.route_failures;
    let failed = Runner.failed outcome in
    if failed then
      counterexamples := shrink_failure ?routers ?spec_of ?shrink_budget sc :: !counterexamples;
    match on_case with Some f -> f ~case ~failed | None -> ()
  done;
  {
    run_seed;
    cases;
    max_nodes;
    schemes = !schemes;
    total_pairs = !total_pairs;
    total_route_failures = !total_route_failures;
    counterexamples = List.rev !counterexamples;
  }

let report s =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "disco-check: seed=%d cases=%d max-nodes=%d\n" s.run_seed s.cases
       s.max_nodes);
  Buffer.add_string b
    (Printf.sprintf "schemes: %s\n" (String.concat ", " s.schemes));
  Buffer.add_string b
    (Printf.sprintf "pairs checked: %d (legal route failures on greedy schemes: %d)\n"
       s.total_pairs s.total_route_failures);
  if passed s then Buffer.add_string b "PASS: no invariant violations\n"
  else begin
    Buffer.add_string b
      (Printf.sprintf "FAIL: %d counterexample(s)\n" (List.length s.counterexamples));
    List.iteri
      (fun i cx ->
        Buffer.add_string b (Printf.sprintf "counterexample %d:\n" (i + 1));
        Buffer.add_string b
          (Printf.sprintf "  original:  %s\n" (Scenario.to_string cx.original));
        Buffer.add_string b
          (Printf.sprintf "  minimized: %s (%d shrink runs)\n"
             (Scenario.to_string cx.minimized) cx.shrink_runs);
        List.iter
          (fun v -> Buffer.add_string b (Printf.sprintf "  - %s\n" (Violation.describe v)))
          cx.violations;
        Buffer.add_string b
          (Printf.sprintf "  replay: %s\n" (Scenario.replay_command cx.minimized)))
      s.counterexamples
  end;
  Buffer.contents b

let counterexample_to_json cx =
  Printf.sprintf
    {|{"original":%s,"minimized":%s,"shrink_runs":%d,"replay":"%s","violations":[%s]}|}
    (Scenario.to_json cx.original)
    (Scenario.to_json cx.minimized)
    cx.shrink_runs
    (Scenario.to_string cx.minimized)
    (String.concat "," (List.map Violation.to_json cx.violations))

let to_json s =
  Printf.sprintf
    {|{"run_seed":%d,"cases":%d,"max_nodes":%d,"schemes":[%s],"total_pairs":%d,"total_route_failures":%d,"passed":%b,"counterexamples":[%s]}|}
    s.run_seed s.cases s.max_nodes
    (String.concat "," (List.map (fun n -> Printf.sprintf "%S" n) s.schemes))
    s.total_pairs s.total_route_failures (passed s)
    (String.concat "," (List.map counterexample_to_json s.counterexamples))
