type counterexample = {
  original : Scenario.t;
  minimized : Scenario.t;
  shrink_runs : int;
  violations : Violation.t list;
}

type summary = {
  run_seed : int;
  cases : int;
  max_nodes : int;
  schemes : string list;
  total_pairs : int;
  total_route_failures : int;
  counterexamples : counterexample list;
}

let passed s = s.counterexamples = []

let shrink_failure ?routers ?spec_of ?shrink_budget sc =
  let still_fails c = Runner.failed (Runner.run ?routers ?spec_of c) in
  let minimized, shrink_runs = Shrink.minimize ?budget:shrink_budget ~still_fails sc in
  let final = Runner.run ?routers ?spec_of minimized in
  { original = sc; minimized; shrink_runs; violations = final.Runner.violations }

let check_scenario ?routers ?spec_of ?shrink_budget sc =
  let outcome = Runner.run ?routers ?spec_of sc in
  if Runner.failed outcome then
    Some (shrink_failure ?routers ?spec_of ?shrink_budget sc)
  else None

let run_cases ?routers ?spec_of ?shrink_budget ?on_case ?(jobs = 1) ~run_seed
    ~cases ~max_nodes () =
  (* Each case is fully determined by (run_seed, case, max_nodes) — routers
     are rebuilt per scenario — so the sweep parallelizes by case with no
     shared state. Shrinking happens inside the task (it only reruns the
     task's own scenario); outcomes are merged and [on_case] fired in case
     order afterwards, so the summary is identical for every [jobs]. *)
  let exec case =
    let sc = Scenario.generate ~run_seed ~case ~max_nodes in
    let outcome = Runner.run ?routers ?spec_of sc in
    let cx =
      if Runner.failed outcome then
        Some (shrink_failure ?routers ?spec_of ?shrink_budget sc)
      else None
    in
    (outcome, cx)
  in
  let indices = Array.init cases Fun.id in
  let outcomes =
    if jobs > 1 && cases > 1 then
      Disco_util.Pool.with_pool ~jobs (fun p -> Disco_util.Pool.run p indices exec)
    else
      (* Sequential path: interleave [on_case] with the work so progress
         output stays live on long single-job runs. *)
      Array.map
        (fun case ->
          let ((_, cx) as r) = exec case in
          (match on_case with Some f -> f ~case ~failed:(cx <> None) | None -> ());
          r)
        indices
  in
  if jobs > 1 && cases > 1 then
    Array.iteri
      (fun case (_, cx) ->
        match on_case with Some f -> f ~case ~failed:(cx <> None) | None -> ())
      outcomes;
  let schemes =
    match outcomes with
    | [||] -> []
    | _ -> (fst outcomes.(0)).Runner.schemes
  in
  let total_pairs =
    Array.fold_left (fun acc (o, _) -> acc + o.Runner.pairs_checked) 0 outcomes
  in
  let total_route_failures =
    Array.fold_left (fun acc (o, _) -> acc + o.Runner.route_failures) 0 outcomes
  in
  let counterexamples =
    Array.to_list outcomes |> List.filter_map (fun (_, cx) -> cx)
  in
  {
    run_seed;
    cases;
    max_nodes;
    schemes;
    total_pairs;
    total_route_failures;
    counterexamples;
  }

let report s =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "disco-check: seed=%d cases=%d max-nodes=%d\n" s.run_seed s.cases
       s.max_nodes);
  Buffer.add_string b
    (Printf.sprintf "schemes: %s\n" (String.concat ", " s.schemes));
  Buffer.add_string b
    (Printf.sprintf "pairs checked: %d (legal route failures on greedy schemes: %d)\n"
       s.total_pairs s.total_route_failures);
  if passed s then Buffer.add_string b "PASS: no invariant violations\n"
  else begin
    Buffer.add_string b
      (Printf.sprintf "FAIL: %d counterexample(s)\n" (List.length s.counterexamples));
    List.iteri
      (fun i cx ->
        Buffer.add_string b (Printf.sprintf "counterexample %d:\n" (i + 1));
        Buffer.add_string b
          (Printf.sprintf "  original:  %s\n" (Scenario.to_string cx.original));
        Buffer.add_string b
          (Printf.sprintf "  minimized: %s (%d shrink runs)\n"
             (Scenario.to_string cx.minimized) cx.shrink_runs);
        List.iter
          (fun v -> Buffer.add_string b (Printf.sprintf "  - %s\n" (Violation.describe v)))
          cx.violations;
        Buffer.add_string b
          (Printf.sprintf "  replay: %s\n" (Scenario.replay_command cx.minimized)))
      s.counterexamples
  end;
  Buffer.contents b

let counterexample_to_json cx =
  Printf.sprintf
    {|{"original":%s,"minimized":%s,"shrink_runs":%d,"replay":"%s","violations":[%s]}|}
    (Scenario.to_json cx.original)
    (Scenario.to_json cx.minimized)
    cx.shrink_runs
    (Scenario.to_string cx.minimized)
    (String.concat "," (List.map Violation.to_json cx.violations))

let to_json s =
  Printf.sprintf
    {|{"run_seed":%d,"cases":%d,"max_nodes":%d,"schemes":[%s],"total_pairs":%d,"total_route_failures":%d,"passed":%b,"counterexamples":[%s]}|}
    s.run_seed s.cases s.max_nodes
    (String.concat "," (List.map (fun n -> Printf.sprintf "%S" n) s.schemes))
    s.total_pairs s.total_route_failures (passed s)
    (String.concat "," (List.map counterexample_to_json s.counterexamples))
