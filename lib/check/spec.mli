(** Per-scheme invariant expectations: what disco-check may assert about
    each registered router.

    The catalog encodes the paper guarantees — and only those. Universal
    checks (paths are valid, stretch >= 1, state >= 0, determinism) apply
    to every scheme regardless of its spec; a spec only *adds* bounds.
    Stretch bounds marked [needs_coverage] hold deterministically when
    every node has a landmark in its vicinity (the §6 observation), so the
    runner gates them on that predicate rather than on "w.h.p.". *)

type t = {
  scheme : string;
  guaranteed_delivery : bool;
      (** must return a route for every reachable pair (false for the
          greedy schemes, BVR/VRR, whose failures are legal and counted) *)
  first_bound : float option;  (** first-packet worst-case stretch *)
  later_bound : float option;  (** post-handshake worst-case stretch *)
  needs_coverage : bool;
      (** stretch bounds apply only under landmark-in-every-vicinity *)
  skip_fallback_first : bool;
      (** first-packet bound waived on resolution-fallback pairs (the
          w.h.p. escape hatch of Theorem 1, observable via telemetry) *)
  state_bound : (n:int -> float) option;
      (** per-node routing-entry bound, slack included *)
  walk_exact : bool;
      (** the data-plane walk must reproduce the oracle's node sequence
          exactly. True for schemes whose [forward] replays the oracle's
          decision procedure step for step (path vector, SEATTLE, BVR,
          VRR, TZ); false for the shortcut schemes (disco, nddisco, s4),
          whose walks may divert at a different-but-equivalent point —
          there the runner requires equal delivery verdicts and equal
          weighted length instead. *)
  fastpath : bool;
      (** run the fast≡typed differential: encode the scheme's headers
          through the wire codec, route them with the compiled forward
          ([ROUTER.compile] + [Dataplane.fast_walk]) and require the exact
          typed hop sequence and delivery/drop verdict (typed loop
          detection aside). True for every built-in scheme. *)
}

val sqrt_state_slack : float
(** Slack multiplier on the [Õ(sqrt n)] state bounds. Calibrated against
    seed sweeps (see DESIGN.md, "disco-check"): comfortably above the
    worst ratio observed on main across all families, low enough to catch
    a scheme whose state grows a family faster. *)

val sqrt_state_offset : float
(** Additive cushion on the same bounds: at disco-check sizes the landmark
    count is a non-negligible additive term that the multiplicative form
    under-approximates (worst at the [min_nodes] end). *)

val defaults : t list
(** One spec per registered scheme. *)

val find : string -> t
(** Spec for a scheme name; unknown names get a permissive spec (universal
    checks only). *)

val permissive : string -> t
