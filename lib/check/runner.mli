(** Execute one scenario against every router and collect invariant
    violations.

    For each scheme the runner builds converged state over the scenario's
    testbed, measures the scenario's workload through both of the scheme's
    faces — the closed-form oracle routes and hop-by-hop walks of its data
    plane — and checks:

    - every returned route is a real path from src to dst in the graph;
    - delivery, for schemes that guarantee it (the graph is connected);
    - stretch against a full-Dijkstra oracle: never below 1, and within
      the scheme's bound whenever its preconditions hold (coverage for
      Disco/NDDisco, non-fallback pairs for Disco's first packet);
    - walk ≡ oracle: the data-plane walk and the oracle agree on the
      delivery verdict; delivered walks reproduce the oracle's node
      sequence ({!Spec.t.walk_exact}) or its weighted length (the
      shortcut schemes); a walker {!Disco_core.Dataplane.Protocol_error}
      — non-neighbor hop, misdelivery, refused header — is always a
      violation. The walker itself enforces TTL-bounded loop-free
      progress and that [forward] sees nothing but the header and the
      deciding node;
    - per-node state within the scheme's bound, never negative;
    - bit-exact determinism: a second build from the same scenario must
      reproduce the topology, every route, every walk, every state table
      and the full telemetry snapshot (including the walk counters);
    - the differential invariant that Disco's post-handshake routes equal
      NDDisco's (Disco §4.3 delegates forwarding to NDDisco over its own
      addresses);
    - landmark-churn hysteresis: a size schedule confined to a
      sub-factor-2 band must produce zero status flips.

    [routers] and [spec_of] default to the global registry and
    {!Spec.find}; tests override them to check a deliberately broken
    router without polluting the registry. *)

type outcome = {
  n : int;  (** actual node count of the materialized graph *)
  pairs_checked : int;
  schemes : string list;  (** schemes that ran, in order *)
  route_failures : int;  (** legal [None] routes on non-guaranteed schemes *)
  violations : Violation.t list;
}

val run :
  ?routers:Disco_experiments.Protocol.packed list ->
  ?spec_of:(string -> Spec.t) ->
  Scenario.t ->
  outcome

val failed : outcome -> bool

val coverage : Disco_core.Nddisco.t -> bool
(** Landmark-in-every-vicinity: the precondition under which the Disco and
    NDDisco stretch theorems hold deterministically (a node that is itself
    a landmark counts as covered). *)
