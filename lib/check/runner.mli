(** Execute one scenario against every router and collect invariant
    violations.

    For each scheme the runner builds converged state over the scenario's
    testbed, routes the scenario's workload, and checks:

    - every returned route is a real path from src to dst in the graph;
    - delivery, for schemes that guarantee it (the graph is connected);
    - stretch against a full-Dijkstra oracle: never below 1, and within
      the scheme's bound whenever its preconditions hold (coverage for
      Disco/NDDisco, non-fallback pairs for Disco's first packet);
    - per-node state within the scheme's bound, never negative;
    - bit-exact determinism: a second build from the same scenario must
      reproduce the topology, every route, every state table and the
      telemetry counters;
    - the differential invariant that Disco's post-handshake routes equal
      NDDisco's (Disco §4.3 delegates forwarding to NDDisco over its own
      addresses);
    - landmark-churn hysteresis: a size schedule confined to a
      sub-factor-2 band must produce zero status flips.

    [routers] and [spec_of] default to the global registry and
    {!Spec.find}; tests override them to check a deliberately broken
    router without polluting the registry. *)

type outcome = {
  n : int;  (** actual node count of the materialized graph *)
  pairs_checked : int;
  schemes : string list;  (** schemes that ran, in order *)
  route_failures : int;  (** legal [None] routes on non-guaranteed schemes *)
  violations : Violation.t list;
}

val run :
  ?routers:Disco_experiments.Protocol.packed list ->
  ?spec_of:(string -> Spec.t) ->
  Scenario.t ->
  outcome

val failed : outcome -> bool

val coverage : Disco_core.Nddisco.t -> bool
(** Landmark-in-every-vicinity: the precondition under which the Disco and
    NDDisco stretch theorems hold deterministically (a node that is itself
    a landmark counts as covered). *)
