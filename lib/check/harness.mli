(** The disco-check case loop: generate scenarios, run them, shrink
    failures, and render the verdict.

    This module returns strings and records; printing is the binary's job
    (lib code stays stdout-free, disco-lint rule L4). *)

type counterexample = {
  original : Scenario.t;  (** the generated scenario that first failed *)
  minimized : Scenario.t;  (** after greedy shrinking (same seed) *)
  shrink_runs : int;  (** candidate runs the shrinker spent *)
  violations : Violation.t list;  (** violations of [minimized] *)
}

type summary = {
  run_seed : int;
  cases : int;
  max_nodes : int;
  schemes : string list;
  total_pairs : int;
  total_route_failures : int;
  counterexamples : counterexample list;
}

val run_cases :
  ?routers:Disco_experiments.Protocol.packed list ->
  ?spec_of:(string -> Spec.t) ->
  ?shrink_budget:int ->
  ?on_case:(case:int -> failed:bool -> unit) ->
  ?jobs:int ->
  run_seed:int ->
  cases:int ->
  max_nodes:int ->
  unit ->
  summary
(** Run cases [0 .. cases-1], each on the scenario
    [Scenario.generate ~run_seed ~case ~max_nodes]. [on_case] fires after
    each case (progress for the binary). [jobs] (default 1) spreads the
    cases over a {!Disco_util.Pool}; cases are independent by
    construction, shrinking stays inside its case's task, and [on_case]
    plus the merge run in case order at the barrier, so the summary is
    bit-identical for every [jobs] value. *)

val check_scenario :
  ?routers:Disco_experiments.Protocol.packed list ->
  ?spec_of:(string -> Spec.t) ->
  ?shrink_budget:int ->
  Scenario.t ->
  counterexample option
(** Run one explicit scenario (the [--replay] path); [Some] iff it fails,
    shrunk like any generated case. *)

val passed : summary -> bool
val report : summary -> string
(** Human-readable multi-line verdict, including a replay command per
    counterexample. *)

val to_json : summary -> string
