(** Invariant violations found by the disco-check runner.

    Each violation names the scheme it was observed on and carries enough
    detail to reproduce it by hand inside the replayed scenario. *)

type kind =
  | Invalid_path of { phase : string; src : int; dst : int; reason : string }
      (** a returned route is not a path from src to dst in the graph *)
  | Delivery_failure of { phase : string; src : int; dst : int }
      (** the scheme guarantees delivery but returned no route for a
          reachable pair *)
  | Beats_oracle of { phase : string; src : int; dst : int; stretch : float }
      (** route strictly shorter than the Dijkstra shortest path — the
          oracle and the routed graph disagree *)
  | Stretch_exceeded of {
      phase : string;
      src : int;
      dst : int;
      stretch : float;
      bound : float;
    }  (** stretch above the scheme's guarantee (preconditions held) *)
  | Negative_state of { node : int; entries : int }
  | State_exceeded of { node : int; entries : int; bound : float }
      (** per-node state above the scheme's bound (slack included) *)
  | Nondeterministic of { what : string }
      (** same seed produced different topology, routes, state or counters *)
  | Differential_mismatch of { other : string; src : int; dst : int; detail : string }
      (** two schemes required to agree (disco/nddisco later routes)
          produced different answers *)
  | Churn_violation of { detail : string }
      (** landmark hysteresis flipped inside a sub-factor-2 band *)
  | Walk_divergence of { phase : string; src : int; dst : int; detail : string }
      (** the hop-by-hop walk and the closed-form oracle disagree: on the
          delivery verdict, on weighted length, or (for [walk_exact]
          schemes) on the node sequence itself *)
  | Dataplane_error of { phase : string; src : int; dst : int; detail : string }
      (** the walker hit a protocol error: [forward] returned a
          non-neighbor, delivered away from the destination, or refused
          its own header *)
  | Fastpath_divergence of { phase : string; src : int; dst : int; detail : string }
      (** the compiled zero-alloc walk ([ROUTER.compile] + [fast_walk])
          disagrees with the typed walk: different verdict, drop reason,
          or hop sequence (typed loop detection aside — the fast walker
          has none and must merely not deliver there) *)

type t = { scheme : string; kind : kind }

val describe : t -> string
(** One human-readable line. *)

val to_json : t -> string
