(** Replayable test scenarios for disco-check.

    A scenario is the entire input of one property-based test case:
    topology family, size, workload shape and churn schedule. Everything
    downstream (the graph, the sampled pairs, the churn schedule) is drawn
    from SplitMix64 streams derived from the single [seed] field, so a
    scenario — including a shrunk counterexample — replays bit-for-bit
    from its textual form ({!to_string} / {!of_string}). *)

type family =
  | Gnm  (** G(n,m) with m = 4n, unit weights *)
  | Geometric  (** random geometric, Euclidean (latency) weights *)
  | As_level  (** preferential attachment, attach = 2 *)
  | Router_level  (** preferential attachment, attach = 3 + 10% mesh edges *)
  | Ring  (** cycle: worst case for explicit-route length *)
  | Grid  (** 2-D mesh *)
  | Star  (** star-of-stars: the S4 footnote-6 worst case *)

type workload =
  | Uniform  (** src and dst uniform over all nodes *)
  | Local  (** dst drawn from the source's truncated-Dijkstra ball *)
  | Hotspot  (** every source routes to one shared destination *)

type t = {
  seed : int;  (** master seed; every random draw derives from it *)
  family : family;
  n : int;  (** requested size (Grid/Star round down to their shape) *)
  pairs : int;  (** number of src/dst workload pairs *)
  workload : workload;
  churn_steps : int;  (** landmark-churn schedule length; 0 = none *)
}

val min_nodes : int
(** Smallest requested [n] the generator and shrinker will produce. *)

val all_families : family list
val family_name : family -> string
val family_of_string : string -> family option

val all_workloads : workload list
val workload_name : workload -> string
val workload_of_string : string -> workload option

val churn_schedule_purpose : int
(** Derivation purpose for the churn size schedule (see {!Runner}). *)

val churn_population_purpose : int
(** Derivation purpose for the churn node population's coin flips. *)

val generate : run_seed:int -> case:int -> max_nodes:int -> t
(** The scenario for case number [case] of a run: all dimensions drawn
    from [Disco_util.Rng.derive run_seed case]. *)

val graph : t -> Disco_graph.Graph.t
(** Materialize the (connected) topology. Deterministic in [t]. *)

val draw_pairs : t -> Disco_graph.Graph.t -> (int * int) list
(** The workload: [pairs] source/destination pairs with [src <> dst],
    drawn per [workload]. Deterministic in [t]. *)

val to_string : t -> string
(** Canonical [key=value,...] form, accepted by {!of_string} and by
    [disco_check --replay]. *)

val of_string : string -> (t, string) result
val to_json : t -> string

val replay_command : t -> string
(** The exact shell command that re-runs just this scenario. *)
