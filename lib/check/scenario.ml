module Gen = Disco_graph.Gen
module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra
module Rng = Disco_util.Rng

type family = Gnm | Geometric | As_level | Router_level | Ring | Grid | Star
type workload = Uniform | Local | Hotspot

type t = {
  seed : int;
  family : family;
  n : int;
  pairs : int;
  workload : workload;
  churn_steps : int;
}

let min_nodes = 16
let all_families = [ Gnm; Geometric; As_level; Router_level; Ring; Grid; Star ]

let family_name = function
  | Gnm -> "gnm"
  | Geometric -> "geometric"
  | As_level -> "as-level"
  | Router_level -> "router-level"
  | Ring -> "ring"
  | Grid -> "grid"
  | Star -> "star"

let family_of_string s =
  List.find_opt (fun f -> String.equal (family_name f) s) all_families

let all_workloads = [ Uniform; Local; Hotspot ]

let workload_name = function
  | Uniform -> "uniform"
  | Local -> "local"
  | Hotspot -> "hotspot"

let workload_of_string s =
  List.find_opt (fun w -> String.equal (workload_name w) s) all_workloads

(* Derivation purposes: each random aspect of a scenario draws from its own
   stream so that, e.g., shrinking the pair count never perturbs the
   topology. Disjoint from Testbed's purposes (1..5, 100+). *)
let graph_purpose = 10
let pairs_purpose = 11
let churn_schedule_purpose = 12
let churn_population_purpose = 13

let generate ~run_seed ~case ~max_nodes =
  let seed = Rng.derive run_seed case in
  let rng = Rng.create seed in
  let family = List.nth all_families (Rng.int rng (List.length all_families)) in
  let span = max 1 (max_nodes - min_nodes + 1) in
  let n = min_nodes + Rng.int rng span in
  let pairs = 8 + Rng.int rng 25 in
  let workload = List.nth all_workloads (Rng.int rng (List.length all_workloads)) in
  let churn_steps = if Rng.bool rng then 4 + Rng.int rng 9 else 0 in
  { seed; family; n; pairs; workload; churn_steps }

let graph t =
  let rng = Rng.create (Rng.derive t.seed graph_purpose) in
  match t.family with
  | Gnm -> Gen.gnm ~rng ~n:t.n ~m:(4 * t.n)
  | Geometric -> Gen.geometric ~rng ~n:t.n ~avg_degree:8.0
  | As_level -> Gen.internet_as ~rng ~n:t.n
  | Router_level -> Gen.internet_router ~rng ~n:t.n
  | Ring -> Gen.ring ~n:t.n
  | Grid ->
      let rows = max 2 (int_of_float (sqrt (float_of_int t.n))) in
      let cols = max 2 (t.n / rows) in
      Gen.grid ~rows ~cols
  | Star ->
      (* Largest branch factor whose star-of-stars fits in n nodes. *)
      let b = ref 2 in
      while 1 + (!b + 1) + ((!b + 1) * (!b + 1)) <= t.n do
        incr b
      done;
      Gen.star_of_stars ~branch:!b

let draw_pairs t g =
  let n = Graph.n g in
  if n < 2 then []
  else begin
    let rng = Rng.create (Rng.derive t.seed pairs_purpose) in
    let other_than v =
      let d = ref (Rng.int rng n) in
      while !d = v do
        d := Rng.int rng n
      done;
      !d
    in
    match t.workload with
    | Uniform ->
        List.init t.pairs (fun _ ->
            let s = Rng.int rng n in
            (s, other_than s))
    | Hotspot ->
        let dst = Rng.int rng n in
        List.init t.pairs (fun _ -> (other_than dst, dst))
    | Local ->
        (* Location-dependent traffic: destinations from the source's
           truncated-Dijkstra ball, the workload where NDDisco's
           vicinity shortcuts dominate. *)
        let k = min (n - 1) (4 + Rng.int rng 13) in
        let ws = Dijkstra.make_workspace g in
        List.init t.pairs (fun _ ->
            let s = Rng.int rng n in
            let trunc = Dijkstra.k_closest ~ws g s (k + 1) in
            let order = trunc.Dijkstra.order in
            let len = Array.length order in
            if len <= 1 then (s, other_than s)
            else (s, order.(1 + Rng.int rng (len - 1))))
  end

let to_string t =
  Printf.sprintf "seed=%d,family=%s,n=%d,pairs=%d,workload=%s,churn=%d" t.seed
    (family_name t.family) t.n t.pairs (workload_name t.workload) t.churn_steps

let of_string s =
  let parse_field acc field =
    match acc with
    | Error _ as e -> e
    | Ok sc -> (
        match String.index_opt field '=' with
        | None -> Error (Printf.sprintf "malformed field %S (expected key=value)" field)
        | Some i -> (
            let key = String.sub field 0 i in
            let value = String.sub field (i + 1) (String.length field - i - 1) in
            let int_of name =
              match int_of_string_opt value with
              | Some v -> Ok v
              | None -> Error (Printf.sprintf "%s: not an integer %S" name value)
            in
            match key with
            | "seed" -> Result.map (fun v -> { sc with seed = v }) (int_of "seed")
            | "n" -> Result.map (fun v -> { sc with n = v }) (int_of "n")
            | "pairs" -> Result.map (fun v -> { sc with pairs = v }) (int_of "pairs")
            | "churn" ->
                Result.map (fun v -> { sc with churn_steps = v }) (int_of "churn")
            | "family" -> (
                match family_of_string value with
                | Some f -> Ok { sc with family = f }
                | None -> Error (Printf.sprintf "unknown family %S" value))
            | "workload" -> (
                match workload_of_string value with
                | Some w -> Ok { sc with workload = w }
                | None -> Error (Printf.sprintf "unknown workload %S" value))
            | _ -> Error (Printf.sprintf "unknown key %S" key)))
  in
  let default =
    { seed = 0; family = Gnm; n = min_nodes; pairs = 8; workload = Uniform; churn_steps = 0 }
  in
  String.split_on_char ',' s
  |> List.filter (fun f -> String.length f > 0)
  |> List.fold_left parse_field (Ok default)

let to_json t =
  Printf.sprintf
    {|{"seed":%d,"family":"%s","n":%d,"pairs":%d,"workload":"%s","churn_steps":%d}|}
    t.seed (family_name t.family) t.n t.pairs (workload_name t.workload)
    t.churn_steps

let replay_command t =
  Printf.sprintf "dune exec bin/disco_check.exe -- --replay '%s'" (to_string t)
