module Graph = Disco_graph.Graph
module Dijkstra = Disco_graph.Dijkstra
module Rng = Disco_util.Rng
module Telemetry = Disco_util.Telemetry
module Nddisco = Disco_core.Nddisco
module Vicinity = Disco_core.Vicinity
module Landmarks = Disco_core.Landmarks
module Params = Disco_core.Params
module Landmark_churn = Disco_core.Landmark_churn
module Dataplane = Disco_core.Dataplane
module Protocol = Disco_experiments.Protocol
module Testbed = Disco_experiments.Testbed
module Routers = Disco_experiments.Routers
module Walk = Disco_experiments.Walk

type outcome = {
  n : int;
  pairs_checked : int;
  schemes : string list;
  route_failures : int;
  violations : Violation.t list;
}

let failed o = o.violations <> []

(* Float slop for stretch comparisons: path lengths and oracle distances
   are sums of the same weights in different orders. *)
let eps = 1e-6

let coverage (nd : Nddisco.t) =
  let lm = nd.Nddisco.landmarks in
  let n = Graph.n nd.Nddisco.graph in
  let covered v =
    lm.Landmarks.is_landmark.(v)
    || begin
         let view = Vicinity.view nd.Nddisco.vicinity v in
         Array.exists (fun w -> lm.Landmarks.is_landmark.(w)) view.Vicinity.members
       end
  in
  let ok = ref true in
  for v = 0 to n - 1 do
    if !ok && not (covered v) then ok := false
  done;
  !ok

(* A route must be a real walk from src to dst over graph edges; its
   length is the sum of the edge weights it traverses. *)
let validate g ~src ~dst path =
  match path with
  | [] -> Error "empty route"
  | first :: _ when first <> src -> Error (Printf.sprintf "starts at %d, not src" first)
  | first :: rest ->
      let rec walk prev len = function
        | [] -> if prev = dst then Ok len else Error (Printf.sprintf "ends at %d, not dst" prev)
        | hop :: tl -> (
            match Graph.edge_weight g prev hop with
            | None -> Error (Printf.sprintf "no edge %d-%d" prev hop)
            | Some w -> walk hop (len +. w) tl)
      in
      walk first 0.0 rest

type pair_result = {
  src : int;
  dst : int;
  first : int list option;  (** oracle's first-packet route *)
  later : int list option;  (** oracle's post-handshake route *)
  walk_first : Dataplane.trace;  (** data plane's first packet *)
  walk_later : Dataplane.trace;
  first_fallback : bool;
      (** the first-packet walk detoured via the resolution database *)
}

type measurement = {
  results : pair_result list;
  states : int array;
  tel : Telemetry.t;
}

(* Each pair is measured twice over: the closed-form oracle route and a
   hop-by-hop walk of the scheme's data plane. The runner then holds the
   two against each other (check_walk) on top of the oracle-side
   invariants. *)
let measure (packed : Protocol.packed) tb pairs =
  let module R = (val packed : Protocol.ROUTER) in
  let tel = Telemetry.create () in
  let rt = R.build tb in
  let graph = tb.Testbed.graph in
  let results =
    List.map
      (fun (src, dst) ->
        let first = R.oracle_first rt ~tel ~src ~dst in
        let later = R.oracle_later rt ~tel ~src ~dst in
        let walk_first = Walk.first_trace (module R) rt ~tel ~graph ~src ~dst in
        let walk_later = Walk.later_trace (module R) rt ~tel ~graph ~src ~dst in
        {
          src;
          dst;
          first;
          later;
          walk_first;
          walk_later;
          first_fallback = Walk.fell_back walk_first;
        })
      pairs
  in
  let n = Graph.n graph in
  let states = Array.init n (fun v -> R.state_entries rt v) in
  { results; states; tel }

let oracle_distances g pairs =
  let ws = Dijkstra.make_workspace g in
  let cache = Hashtbl.create 16 in
  List.map
    (fun (src, dst) ->
      let sp =
        match Hashtbl.find_opt cache src with
        | Some sp -> sp
        | None ->
            let sp = Dijkstra.sssp ~ws g src in
            Hashtbl.add cache src sp;
            sp
      in
      sp.Dijkstra.dist.(dst))
    pairs

let check_phase ~violations ~scheme ~spec ~covered g ~phase ~oracle pr route
    ~fallback =
  let add kind = violations := { Violation.scheme; kind } :: !violations in
  let bound =
    match phase with "first" -> spec.Spec.first_bound | _ -> spec.Spec.later_bound
  in
  let bound_applies =
    ((not spec.Spec.needs_coverage) || covered)
    && not (String.equal phase "first" && spec.Spec.skip_fallback_first && fallback)
  in
  match route with
  | None ->
      if spec.Spec.guaranteed_delivery && oracle < infinity then
        add (Violation.Delivery_failure { phase; src = pr.src; dst = pr.dst })
  | Some path -> (
      match validate g ~src:pr.src ~dst:pr.dst path with
      | Error reason ->
          add (Violation.Invalid_path { phase; src = pr.src; dst = pr.dst; reason })
      | Ok len ->
          let stretch = len /. oracle in
          if stretch < 1.0 -. eps then
            add (Violation.Beats_oracle { phase; src = pr.src; dst = pr.dst; stretch });
          (match bound with
          | Some b when bound_applies && stretch > b +. eps ->
              add
                (Violation.Stretch_exceeded
                   { phase; src = pr.src; dst = pr.dst; stretch; bound = b })
          | _ -> ()))

(* Walk ≡ oracle, per scheme. Both faces must agree on the delivery
   verdict; when both deliver, [walk_exact] schemes must reproduce the
   oracle's node sequence and the rest (the shortcut schemes) must land on
   the same weighted length — their walks may divert from knowledge at a
   different-but-equivalent point, but every divert rides a shortest path.
   A [Protocol_error] drop is a bug regardless of what the oracle says:
   the forward function broke the data-plane contract itself. *)
let check_walk ~violations ~scheme ~spec g ~phase pr ~oracle_route
    (tr : Dataplane.trace) =
  let add kind = violations := { Violation.scheme; kind } :: !violations in
  let src = pr.src and dst = pr.dst in
  match tr.Dataplane.dropped with
  | Some (Dataplane.Protocol_error _ as r) ->
      add
        (Violation.Dataplane_error
           { phase; src; dst; detail = Dataplane.reason_to_string r })
  | _ -> (
      match (oracle_route, tr.Dataplane.delivered) with
      | None, false -> ()
      | None, true ->
          add
            (Violation.Walk_divergence
               { phase; src; dst; detail = "walk delivered but the oracle found no route" })
      | Some _, false ->
          let why =
            match tr.Dataplane.dropped with
            | Some r -> Dataplane.reason_to_string r
            | None -> "not delivered"
          in
          add
            (Violation.Walk_divergence
               {
                 phase;
                 src;
                 dst;
                 detail = Printf.sprintf "oracle routes but the walk dropped (%s)" why;
               })
      | Some path, true ->
          (* The walker validated every hop as a graph edge; both lengths
             exist. *)
          let len_walk = Dijkstra.path_length g tr.Dataplane.path in
          let len_oracle = Dijkstra.path_length g path in
          if spec.Spec.walk_exact && tr.Dataplane.path <> path then
            add
              (Violation.Walk_divergence
                 {
                   phase;
                   src;
                   dst;
                   detail =
                     Printf.sprintf
                       "walk path differs from the oracle's (%d vs %d hops)"
                       (List.length tr.Dataplane.path - 1)
                       (List.length path - 1);
                 })
          else if Float.abs (len_walk -. len_oracle) > eps then
            add
              (Violation.Walk_divergence
                 {
                   phase;
                   src;
                   dst;
                   detail =
                     Printf.sprintf "walk length %.6f, oracle length %.6f"
                       len_walk len_oracle;
                 }))

(* Fast ≡ typed, per scheme: encode the scheme's own headers through the
   wire codec, route them with the compiled forward over one scratch
   packet, and hold the zero-alloc walk to the typed walk's exact hop
   sequence and verdict.  The one sanctioned difference is loop
   detection, which the fast walker doesn't do: where the typed walk
   reports [Loop_detected], the fast walk must merely not deliver (it
   replays the cycle until TTL). *)
let check_fastpath ~violations ~scheme ~spec (packed : Protocol.packed) tb m =
  if spec.Spec.fastpath then begin
    let module R = (val packed : Protocol.ROUTER) in
    let tel = Telemetry.create () in
    let rt = R.build tb in
    let plan = R.compile rt in
    let g = tb.Testbed.graph in
    let ttl = R.ttl_factor * Graph.n g in
    let pkt = Dataplane.packet_create g in
    let trail = Array.make (ttl + 1) (-1) in
    let add kind = violations := { Violation.scheme; kind } :: !violations in
    let trail_path phops =
      let rec collect i acc = if i < 0 then acc else collect (i - 1) (trail.(i) :: acc) in
      collect phops []
    in
    let check_one ~phase ~src ~dst header (typed : Dataplane.trace) =
      let size = Dataplane.encoded_size g ~src header in
      let buf = Bytes.create size in
      let written = Dataplane.encode_header g ~src header buf ~pos:0 in
      if written <> size then
        add
          (Violation.Fastpath_divergence
             {
               phase;
               src;
               dst;
               detail =
                 Printf.sprintf "codec size mismatch: sized %d, wrote %d" size written;
             })
      else begin
        Dataplane.decode_into g pkt buf ~pos:0 ~src;
        Dataplane.fast_walk g ~step:plan.Dataplane.fstep pkt ~src ~ttl ~trail;
        let fast_verdict () =
          if pkt.Dataplane.pdelivered then "delivered"
          else Dataplane.drop_to_string pkt.Dataplane.pdrop
        in
        let diverge detail = add (Violation.Fastpath_divergence { phase; src; dst; detail }) in
        let require_same_path () =
          if trail_path pkt.Dataplane.phops <> typed.Dataplane.path then
            diverge
              (Printf.sprintf "hop sequences differ (fast %d hops, typed %d hops)"
                 pkt.Dataplane.phops
                 (List.length typed.Dataplane.path - 1))
        in
        match typed.Dataplane.dropped with
        | None ->
            if not pkt.Dataplane.pdelivered then
              diverge
                (Printf.sprintf "typed walk delivered, fast walk %s" (fast_verdict ()))
            else require_same_path ()
        | Some Dataplane.Loop_detected ->
            if pkt.Dataplane.pdelivered then
              diverge "typed walk looped, fast walk delivered"
        | Some Dataplane.Ttl_expired ->
            if pkt.Dataplane.pdrop <> Dataplane.drop_ttl then
              diverge
                (Printf.sprintf "typed walk expired its TTL, fast walk %s"
                   (fast_verdict ()))
            else require_same_path ()
        | Some Dataplane.No_route ->
            if pkt.Dataplane.pdrop <> Dataplane.drop_no_route then
              diverge
                (Printf.sprintf "typed walk dropped (no route), fast walk %s"
                   (fast_verdict ()))
            else require_same_path ()
        | Some (Dataplane.Protocol_error _) ->
            if pkt.Dataplane.pdrop <> Dataplane.drop_protocol then
              diverge
                (Printf.sprintf "typed walk hit a protocol error, fast walk %s"
                   (fast_verdict ()))
      end
    in
    List.iter
      (fun pr ->
        plan.Dataplane.fprime ~src:pr.src ~dst:pr.dst;
        check_one ~phase:"first" ~src:pr.src ~dst:pr.dst
          (R.first_header rt ~tel ~src:pr.src ~dst:pr.dst)
          pr.walk_first;
        check_one ~phase:"later" ~src:pr.src ~dst:pr.dst
          (R.later_header rt ~tel ~src:pr.src ~dst:pr.dst)
          pr.walk_later)
      m.results
  end

let check_states ~violations ~scheme ~spec ~n states =
  let add kind = violations := { Violation.scheme; kind } :: !violations in
  (* Report only the worst offending node per kind, not one violation per
     node: the shrinker wants a signal, not n copies of it. *)
  let worst_neg = ref None and worst_over = ref None in
  Array.iteri
    (fun node entries ->
      if entries < 0 then
        match !worst_neg with
        | Some (_, e) when e <= entries -> ()
        | _ -> worst_neg := Some (node, entries)
      else
        match spec.Spec.state_bound with
        | None -> ()
        | Some f ->
            let bound = f ~n in
            if float_of_int entries > bound +. eps then
              match !worst_over with
              | Some (_, e, _) when e >= entries -> ()
              | _ -> worst_over := Some (node, entries, bound))
    states;
  (match !worst_neg with
  | Some (node, entries) -> add (Violation.Negative_state { node; entries })
  | None -> ());
  match !worst_over with
  | Some (node, entries, bound) -> add (Violation.State_exceeded { node; entries; bound })
  | None -> ()

let routes_of m = List.map (fun pr -> (pr.first, pr.later)) m.results

let walks_of m =
  List.map
    (fun pr ->
      ( pr.walk_first.Dataplane.path,
        pr.walk_first.Dataplane.delivered,
        pr.walk_later.Dataplane.path,
        pr.walk_later.Dataplane.delivered ))
    m.results

let check_determinism ~violations ~scheme m m' =
  let add what =
    violations := { Violation.scheme; kind = Violation.Nondeterministic { what } } :: !violations
  in
  if routes_of m <> routes_of m' then add "routes";
  if walks_of m <> walks_of m' then add "data-plane walks";
  if m.states <> m'.states then add "state tables";
  (* The full snapshot: the new walk/hop/rewrite/byte counters must
     reproduce bit for bit along with the oracle-side ones. *)
  if Telemetry.snapshot m.tel <> Telemetry.snapshot m'.tel then
    add "telemetry counters"

let check_differential ~violations disco nd =
  List.iter2
    (fun (d : pair_result) (x : pair_result) ->
      if d.later <> x.later then
        let hops = function None -> -1 | Some p -> List.length p in
        violations :=
          {
            Violation.scheme = "disco";
            kind =
              Violation.Differential_mismatch
                {
                  other = "nddisco";
                  src = d.src;
                  dst = d.dst;
                  detail =
                    Printf.sprintf "later routes differ (%d vs %d hops)"
                      (hops d.later) (hops x.later);
                };
          }
          :: !violations)
    disco.results nd.results

(* Hysteresis flips only on a >= 2x size change since a node's own last
   re-draw. A schedule confined to [0.75, 1.33] x n0 keeps every ratio —
   including for nodes created mid-schedule — below 1.33 / 0.75 < 2, so
   any flip at all is a bug, deterministically. *)
let check_churn ~violations (sc : Scenario.t) ~n =
  if sc.Scenario.churn_steps > 0 then begin
    let sched = Rng.create (Rng.derive sc.Scenario.seed Scenario.churn_schedule_purpose) in
    let pop = Rng.create (Rng.derive sc.Scenario.seed Scenario.churn_population_purpose) in
    let ch =
      Landmark_churn.create ~rng:pop ~params:Params.default ~hysteresis:true ~n0:n
    in
    let flipped = ref None in
    for step = 1 to sc.Scenario.churn_steps do
      let f = 0.75 +. Rng.float sched 0.58 in
      let n' = max 4 (int_of_float (Float.round (float_of_int n *. f))) in
      let flips = Landmark_churn.observe ch ~n:n' in
      if flips > 0 && !flipped = None then flipped := Some (step, n', flips)
    done;
    match !flipped with
    | Some (step, n', flips) ->
        violations :=
          {
            Violation.scheme = "landmark-churn";
            kind =
              Violation.Churn_violation
                {
                  detail =
                    Printf.sprintf
                      "%d flips at step %d (n %d -> %d, inside the sub-2x band)"
                      flips step n n';
                };
          }
          :: !violations
    | None -> ()
  end

let run ?routers ?(spec_of = Spec.find) (sc : Scenario.t) =
  let routers = match routers with Some r -> r | None -> Routers.all () in
  let g = Scenario.graph sc in
  let n = Graph.n g in
  let pairs = Scenario.draw_pairs sc g in
  let tb = Testbed.of_graph ~seed:sc.Scenario.seed g in
  let violations = ref [] in
  (* Second world, built from nothing but the scenario: everything the
     first build produced must reproduce bit-for-bit. *)
  let g' = Scenario.graph sc in
  if Graph.edges g <> Graph.edges g' then
    violations :=
      { Violation.scheme = "scenario"; kind = Violation.Nondeterministic { what = "topology" } }
      :: !violations;
  let pairs' = Scenario.draw_pairs sc g' in
  if pairs <> pairs' then
    violations :=
      { Violation.scheme = "scenario"; kind = Violation.Nondeterministic { what = "workload" } }
      :: !violations;
  let tb' = Testbed.of_graph ~seed:sc.Scenario.seed g' in
  let covered = coverage (Testbed.nd tb) in
  let oracles = oracle_distances g pairs in
  let route_failures = ref 0 in
  let measured =
    List.map
      (fun packed ->
        let scheme = Protocol.name_of packed in
        let spec = spec_of scheme in
        let m = measure packed tb pairs in
        let m' = measure packed tb' pairs in
        List.iter2
          (fun pr oracle ->
            let count_failure route =
              if route = None && not spec.Spec.guaranteed_delivery then incr route_failures
            in
            count_failure pr.first;
            count_failure pr.later;
            check_phase ~violations ~scheme ~spec ~covered g ~phase:"first" ~oracle pr
              pr.first ~fallback:pr.first_fallback;
            check_phase ~violations ~scheme ~spec ~covered g ~phase:"later" ~oracle pr
              pr.later ~fallback:false;
            check_walk ~violations ~scheme ~spec g ~phase:"first" pr
              ~oracle_route:pr.first pr.walk_first;
            check_walk ~violations ~scheme ~spec g ~phase:"later" pr
              ~oracle_route:pr.later pr.walk_later)
          m.results oracles;
        check_states ~violations ~scheme ~spec ~n m.states;
        check_determinism ~violations ~scheme m m';
        check_fastpath ~violations ~scheme ~spec packed tb m;
        (scheme, m))
      routers
  in
  (match (List.assoc_opt "disco" measured, List.assoc_opt "nddisco" measured) with
  | Some d, Some x -> check_differential ~violations d x
  | _ -> ());
  check_churn ~violations sc ~n;
  {
    n;
    pairs_checked = List.length pairs;
    schemes = List.map fst measured;
    route_failures = !route_failures;
    violations = List.rev !violations;
  }
