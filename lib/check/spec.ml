type t = {
  scheme : string;
  guaranteed_delivery : bool;
  first_bound : float option;
  later_bound : float option;
  needs_coverage : bool;
  skip_fallback_first : bool;
  state_bound : (n:int -> float) option;
  walk_exact : bool;
  fastpath : bool;
}

(* Calibrated over `disco_check --seed 42 --cases 200` plus 1000-case
   sweeps at max-nodes 256 and a disco-sim state probe up to n = 1024:
   the worst observed ratio to sqrt(n log2 n) is ~4.3 at n = 1024 and
   ~5.4 at n = 64 (landmark density, an additive term, dominates small n —
   hence the constant offset). A scheme whose state grows a family faster
   overshoots this well inside disco-check's size range. *)
let sqrt_state_slack = 6.0
let sqrt_state_offset = 16.0

let sqrt_state ~n =
  let fn = float_of_int (max 2 n) in
  sqrt_state_offset +. (sqrt_state_slack *. sqrt (fn *. (log fn /. log 2.)))

let permissive scheme =
  {
    scheme;
    guaranteed_delivery = false;
    first_bound = None;
    later_bound = None;
    needs_coverage = false;
    skip_fallback_first = false;
    state_bound = None;
    walk_exact = false;
    fastpath = true;
  }

let defaults =
  [
    (* Path vector is the stretch-1 reference: shortest paths, full tables. *)
    {
      scheme = "pathvector";
      guaranteed_delivery = true;
      first_bound = Some 1.0;
      later_bound = Some 1.0;
      needs_coverage = false;
      skip_fallback_first = false;
      state_bound = Some (fun ~n -> float_of_int (n - 1));
      walk_exact = true;
      fastpath = true;
    };
    (* SEATTLE: first packet detours through the resolver (no worst-case
       bound); cached forwarding is shortest-path. *)
    {
      scheme = "seattle";
      guaranteed_delivery = true;
      first_bound = None;
      later_bound = Some 1.0;
      needs_coverage = false;
      skip_fallback_first = false;
      state_bound = None;
      walk_exact = true;
      fastpath = true;
    };
    (* BVR and VRR are greedy/geographic: legal to fail, no stretch bound,
       but their data planes replay the oracle's decision procedure
       step for step, so the walks must match node for node. *)
    { (permissive "bvr") with scheme = "bvr"; walk_exact = true };
    { (permissive "vrr") with scheme = "vrr"; walk_exact = true };
    (* S4: worst-case stretch 3 (TZ) once the landmark is known; the first
       packet detours via the resolution database — unbounded (§5). *)
    {
      scheme = "s4";
      guaranteed_delivery = true;
      first_bound = None;
      later_bound = Some 3.0;
      needs_coverage = false;
      skip_fallback_first = false;
      state_bound = Some sqrt_state;
      walk_exact = false;
      fastpath = true;
    };
    (* NDDisco, Theorem 2: first <= 5, later <= 3, deterministic under
       landmark-in-every-vicinity. *)
    {
      scheme = "nddisco";
      guaranteed_delivery = true;
      first_bound = Some 5.0;
      later_bound = Some 3.0;
      needs_coverage = true;
      skip_fallback_first = false;
      state_bound = Some sqrt_state;
      walk_exact = false;
      fastpath = true;
    };
    (* Disco, Theorem 1: first <= 7 unless the pair fell back to global
       resolution (the w.h.p. clause), later <= 3. *)
    {
      scheme = "disco";
      guaranteed_delivery = true;
      first_bound = Some 7.0;
      later_bound = Some 3.0;
      needs_coverage = true;
      skip_fallback_first = true;
      state_bound = Some sqrt_state;
      walk_exact = false;
      fastpath = true;
    };
    (* Thorup–Zwick with k = 2: worst-case stretch 2k - 1 = 3. *)
    {
      scheme = "tz";
      guaranteed_delivery = true;
      first_bound = Some 3.0;
      later_bound = Some 3.0;
      needs_coverage = false;
      skip_fallback_first = false;
      state_bound = Some sqrt_state;
      walk_exact = true;
      fastpath = true;
    };
  ]

let find scheme =
  match List.find_opt (fun s -> String.equal s.scheme scheme) defaults with
  | Some s -> s
  | None -> permissive scheme
